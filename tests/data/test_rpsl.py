"""Tests for RPSL objects and the synthetic IRR database."""

import pytest

from repro.data.rpsl import (
    AutNumObject,
    IrrDatabase,
    PolicyLine,
    local_pref_to_rpsl_pref,
    rpsl_pref_to_local_pref,
)
from repro.exceptions import DataFormatError
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.topology.generator import GeneratorParameters, InternetGenerator

PAPER_EXAMPLE = """\
aut-num: AS1
import: from AS2 action pref = 1; accept ANY
"""


class TestPrefMapping:
    def test_pref_is_opposite_to_local_pref(self):
        assert local_pref_to_rpsl_pref(110) < local_pref_to_rpsl_pref(90)

    def test_roundtrip(self):
        for local_pref in (80, 90, 100, 110, 120):
            assert rpsl_pref_to_local_pref(local_pref_to_rpsl_pref(local_pref)) == local_pref


class TestAutNumParsing:
    def test_paper_example(self):
        obj = AutNumObject.parse(PAPER_EXAMPLE)
        assert obj.asn == 1
        assert len(obj.imports) == 1
        line = obj.imports[0]
        assert line.peer_as == 2
        assert line.pref == 1
        assert line.filter_text == "ANY"

    def test_render_parse_roundtrip(self):
        obj = AutNumObject(asn=5511, as_name="FT-BACKBONE", last_updated="20021101")
        obj.imports.append(PolicyLine("import", peer_as=1239, pref=900, filter_text="ANY"))
        obj.imports.append(PolicyLine("import", peer_as=64999, pref=890, filter_text="AS64999"))
        obj.exports.append(PolicyLine("export", peer_as=1239, filter_text="AS5511"))
        parsed = AutNumObject.parse(obj.render())
        assert parsed.asn == 5511
        assert parsed.as_name == "FT-BACKBONE"
        assert parsed.import_pref_for(1239) == 900
        assert parsed.import_pref_for(64999) == 890
        assert parsed.import_pref_for(42) is None
        assert parsed.neighbors() == {1239, 64999}
        assert parsed.last_updated == "20021101"

    def test_import_without_pref(self):
        obj = AutNumObject.parse("aut-num: AS7\nimport: from AS9 accept AS9\n")
        assert obj.imports[0].pref is None

    def test_unknown_attributes_ignored(self):
        text = "aut-num: AS7\ndescr: something\nadmin-c: X\nimport: from AS9 accept ANY\n"
        obj = AutNumObject.parse(text)
        assert obj.asn == 7
        assert len(obj.imports) == 1

    def test_missing_autnum_rejected(self):
        with pytest.raises(DataFormatError):
            AutNumObject.parse("import: from AS9 accept ANY\n")

    def test_attribute_before_autnum_rejected(self):
        with pytest.raises(DataFormatError):
            AutNumObject.parse("as-name: X\naut-num: AS7\n")

    def test_bad_import_rejected(self):
        with pytest.raises(DataFormatError):
            AutNumObject.parse("aut-num: AS7\nimport: gibberish\n")

    def test_bad_autnum_value_rejected(self):
        with pytest.raises(DataFormatError):
            AutNumObject.parse("aut-num: 7\n")


class TestIrrDatabase:
    def test_render_parse_roundtrip(self):
        database = IrrDatabase()
        first = AutNumObject(asn=1)
        first.imports.append(PolicyLine("import", peer_as=2, pref=890, filter_text="ANY"))
        second = AutNumObject(asn=2, last_updated="20010301")
        database.add(first)
        database.add(second)
        restored = IrrDatabase.parse(database.render())
        assert restored.ases() == [1, 2]
        assert restored.get(1).import_pref_for(2) == 890

    def test_updated_during_filters_by_year(self):
        database = IrrDatabase()
        database.add(AutNumObject(asn=1, last_updated="20021101"))
        database.add(AutNumObject(asn=2, last_updated="20010301"))
        fresh = database.updated_during("2002")
        assert [obj.asn for obj in fresh] == [1]

    def test_get_missing(self):
        assert IrrDatabase().get(99) is None


class TestFromAssignment:
    @pytest.fixture(scope="class")
    def internet(self):
        return InternetGenerator(
            GeneratorParameters(seed=2, tier1_count=3, tier2_count=6, tier3_count=10, stub_count=40)
        ).generate()

    @pytest.fixture(scope="class")
    def assignment(self, internet):
        return PolicyGenerator(PolicyParameters(seed=8)).generate(internet)

    def test_registration_probability_respected(self, internet, assignment):
        full = IrrDatabase.from_assignment(internet, assignment, registration_probability=1.0)
        assert len(full) == len(internet.graph)
        none = IrrDatabase.from_assignment(internet, assignment, registration_probability=0.0)
        assert len(none) == 0

    def test_registered_objects_cover_neighbors(self, internet, assignment):
        database = IrrDatabase.from_assignment(
            internet, assignment, registration_probability=1.0, stale_probability=0.0
        )
        for asn in internet.graph.ases():
            obj = database.get(asn)
            assert obj is not None
            assert obj.neighbors() == set(internet.graph.neighbors(asn))

    def test_fresh_objects_encode_actual_local_pref(self, internet, assignment):
        database = IrrDatabase.from_assignment(
            internet, assignment, registration_probability=1.0, stale_probability=0.0
        )
        graph = internet.graph
        for asn in graph.ases():
            policy = assignment.policy_for(asn)
            obj = database.get(asn)
            for neighbor in graph.neighbors(asn):
                relationship = graph.relationship(asn, neighbor)
                expected = policy.neighbor_local_pref.get(
                    neighbor, policy.local_pref.value_for(relationship)
                )
                pref = obj.import_pref_for(neighbor)
                assert rpsl_pref_to_local_pref(pref) == expected

    def test_stale_objects_have_old_dates(self, internet, assignment):
        database = IrrDatabase.from_assignment(
            internet, assignment, registration_probability=1.0, stale_probability=1.0
        )
        assert all(obj.last_updated < "2002" for obj in database)

    def test_deterministic(self, internet, assignment):
        first = IrrDatabase.from_assignment(internet, assignment, seed=3)
        second = IrrDatabase.from_assignment(internet, assignment, seed=3)
        assert first.render() == second.render()
