"""repro.fuzz — scenario families plus the differential fuzz harness.

The golden suites pin the fast propagation engine and the one-pass
analysis engine to their legacy counterparts on five *fixed* scenarios;
this package extends that contract to unbounded scenario diversity:

* :mod:`repro.fuzz.families` — the built-in
  :class:`~repro.session.scenarios.ScenarioFamily` samplers
  (``peering-density``, ``multihoming``, ``hierarchy-depth``,
  ``community-adoption``, ``collector-size``), deterministic from a seed.
* :mod:`repro.fuzz.oracles` — differential oracles (fast = legacy
  propagation, indexed = legacy analysis) and metamorphic/ground-truth
  oracles (valley-freeness, inference adjacency, atom refinement,
  SA-prefix partitions, consistency fractions, peer-export monotonicity).
* :mod:`repro.fuzz.harness` — :func:`run_fuzz`, the CLI's engine
  (``python -m repro fuzz``): samples, runs both engine pairs, judges all
  oracles, and prints the ``(family, seed)`` pair that reproduces any
  failure.
"""

from repro.fuzz import families  # noqa: F401  (registers the built-in families)
from repro.fuzz.harness import (
    FuzzCaseResult,
    FuzzReport,
    OracleFailure,
    build_context,
    run_case,
    run_fuzz,
)
from repro.fuzz.oracles import ORACLES, FuzzContext, OracleViolation

__all__ = [
    "ORACLES",
    "FuzzCaseResult",
    "FuzzContext",
    "FuzzReport",
    "OracleFailure",
    "OracleViolation",
    "build_context",
    "run_case",
    "run_fuzz",
]
