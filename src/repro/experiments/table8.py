"""Table 8 — multihomed vs. single-homed origins of SA prefixes."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table8Experiment(Experiment):
    """Homing of the ASes whose prefixes are SA prefixes."""

    experiment_id = "table8"
    title = "Multihomed vs. single-homed ASes with SA prefixes"
    paper_reference = "Table 8, Section 5.1.5"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        result.headers = ["provider", "multihomed origins", "single-homed origins", "% multihomed"]
        for provider in sorted(engine.sa_reports()):
            breakdown = engine.homing_breakdown(provider)
            result.rows.append(
                [
                    f"AS{provider}",
                    breakdown.multihomed_count,
                    breakdown.singlehomed_count,
                    format_percent(breakdown.percent_multihomed, 0),
                ]
            )
        result.notes.append(
            "Paper Table 8: ~75% of the ASes whose prefixes are SA are multihomed, "
            "~25% single-homed."
        )
        return result
