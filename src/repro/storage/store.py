"""The on-disk artifact tier: content-addressed, atomic, versioned.

A :class:`DiskStore` lays stage artifacts out under one root directory::

    <root>/<stage>/<key[:2]>/<key>.art

Keys are the content addresses produced by
:func:`repro.session.cache.fingerprint`, so two processes that agree on a
pipeline prefix address the same files — that is what lets a sweep worker
reuse the topology another worker already compiled.

Each file is a packed ``(header, payload)`` pair.  The header records the
storage schema version, the stage, the stage codec version, the ``repro``
release and the machine byte order; :meth:`DiskStore.read` returns ``None``
(a miss) on any mismatch or corruption instead of handing stale bytes to a
codec.  Writes go through a temporary file in the same directory followed
by :func:`os.replace`, so concurrent writers are safe and a killed process
never leaves a half-written artifact behind.

Failure handling (see ``docs/robustness.md``):

* **Quarantine** — a file that exists but fails validation is *moved* to
  ``<root>/quarantine/<stage>/`` before the miss is returned.  Artifacts
  are content-addressed, so an invalid file can never become valid again;
  quarantining rules out repeated decode attempts and preserves the bytes
  for inspection.
* **Degradation** — :data:`DEGRADE_AFTER` consecutive write failures trip
  the store into memory-only mode: further writes are silently skipped
  (``write`` returns ``None``) instead of raising, and the ``degraded``
  flag plus failure counters are reported by :meth:`DiskStore.health` and
  ``python -m repro cache stats``.
* **Race tolerance** — :meth:`stats` and :meth:`clear` skip files that a
  concurrent writer or ``clear`` removed mid-walk instead of raising.
"""

from __future__ import annotations

import mmap
import os
import pathlib
import sys
import tempfile

from repro.exceptions import StorageError
from repro.faults.runtime import corrupt_artifact, fault_point
from repro.storage.packing import pack, unpack, unpack_view
from repro.storage.versions import CODEC_VERSIONS, SCHEMA_VERSION

#: Leading marker of every artifact file header.
_MAGIC = "repro-artifact"

#: File suffix of stored artifacts.
_SUFFIX = ".art"

#: Subdirectory (next to the stage directories) holding quarantined files.
QUARANTINE_DIR = "quarantine"

#: Consecutive write failures after which the store degrades to
#: memory-only operation (stops attempting disk writes).
DEGRADE_AFTER = 3

#: Directories under the root that are not content-addressed stage tiers.
_NON_STAGE_DIRS = frozenset({"sweeps", QUARANTINE_DIR})


def _expected_header(stage: str) -> tuple:
    """The file header every valid artifact of ``stage`` must carry."""
    from repro import __version__

    return (
        _MAGIC,
        SCHEMA_VERSION,
        stage,
        CODEC_VERSIONS.get(stage, 0),
        __version__,
        sys.byteorder,
    )


class ArtifactView:
    """A validated, mmap-backed window onto one artifact's payload.

    Attributes:
        payload: read-only :class:`memoryview` of the codec payload bytes,
            backed directly by the OS page cache — multiple processes
            opening the same artifact share the physical pages.
        path: the artifact file the view is mapped from.

    The view owns the mapping: keep it (or the payload) alive while any
    derived array views are in use, and :meth:`close` when done.  Closing
    is best-effort — if derived views still pin the buffer the mapping
    stays until they are garbage collected.
    """

    def __init__(self, payload: memoryview, mapping: mmap.mmap, path: pathlib.Path) -> None:
        """Bind the payload view to the mapping that backs it."""
        self.payload: memoryview | None = payload
        self.path = path
        self._mmap: mmap.mmap | None = mapping

    def close(self) -> None:
        """Release the payload view and unmap the file (best-effort)."""
        payload = self.payload
        self.payload = None
        if payload is not None:
            payload.release()
        mapping = self._mmap
        self._mmap = None
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                pass

    def __enter__(self) -> "ArtifactView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_artifact_view(path: str | os.PathLike, stage: str) -> ArtifactView:
    """mmap one artifact file and validate it without copying the payload.

    Unlike :meth:`DiskStore.read_view` this is addressed by *path* (no
    store instance needed), which is what lets pool workers attach a
    cached compiled topology shipped to them as a file descriptor.

    Raises:
        OSError: when the file cannot be opened or mapped.
        StorageError: when the bytes are not a valid artifact of ``stage``
            (wrong header, corruption, or a truncated tree).
    """
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file: cannot be a valid artifact
            raise StorageError(f"not an artifact file: {path}") from exc
    try:
        tree = unpack_view(memoryview(mapping))
        if not (isinstance(tree, tuple) and len(tree) == 2):
            raise StorageError(f"not an artifact file: {path}")
        header, payload = tree
        if header != _expected_header(stage) or not isinstance(payload, memoryview):
            raise StorageError(f"stale or foreign {stage} artifact: {path}")
    except Exception:
        try:
            mapping.close()
        except BufferError:
            pass
        raise
    return ArtifactView(payload, mapping, path)


class DiskStore:
    """The content-addressed disk tier shared across processes.

    Args:
        root: directory the store lives under (created lazily on first
            write; reads from a missing root are plain misses).
        degrade_after: consecutive write failures that trip the store into
            memory-only mode (default :data:`DEGRADE_AFTER`).

    Attributes:
        degraded: ``True`` once persistent write errors disabled the disk
            tier for this store instance; writes become silent no-ops.
        write_failures: total failed write attempts of this instance.
        quarantined_reads: invalid files this instance moved to quarantine.
    """

    def __init__(self, root: str | os.PathLike, *, degrade_after: int = DEGRADE_AFTER) -> None:
        """Bind the store to its root directory (not created yet)."""
        self.root = pathlib.Path(root)
        self.degrade_after = degrade_after
        self.degraded = False
        self.write_failures = 0
        self.quarantined_reads = 0
        self._consecutive_write_failures = 0

    # -- addressing ------------------------------------------------------------

    def path_for(self, stage: str, key: str) -> pathlib.Path:
        """The file path addressing one ``(stage, key)`` artifact."""
        return self.root / stage / key[:2] / f"{key}{_SUFFIX}"

    # -- read / write ----------------------------------------------------------

    def read(self, stage: str, key: str) -> bytes | None:
        """The stored payload of an artifact, or ``None``.

        Args:
            stage: pipeline stage name.
            key: the artifact's content address.

        Returns:
            The codec payload bytes, or ``None`` when the file is missing,
            unreadable, corrupt, or written under a different schema/codec
            version, ``repro`` release or byte order — every mismatch is a
            miss, never an error, so callers simply rebuild.  Invalid files
            are moved to ``<root>/quarantine/<stage>/`` so they are decoded
            at most once.
        """
        path = self.path_for(stage, key)
        fault_point("latency", f"{stage}/{key}")
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            tree = unpack(data)
        except Exception:
            # Corruption can surface as more than StorageError (invalid
            # UTF-8 in a string node, a bad array typecode, a frombytes
            # length mismatch); the read contract is "corruption is a
            # miss", so any decode failure falls back to the builder.
            self._quarantine(stage, path)
            return None
        if not (isinstance(tree, tuple) and len(tree) == 2):
            self._quarantine(stage, path)
            return None
        header, payload = tree
        if header != self._header(stage) or not isinstance(payload, bytes):
            self._quarantine(stage, path)
            return None
        return payload

    def read_view(self, stage: str, key: str) -> ArtifactView | None:
        """A zero-copy mmap view of an artifact's payload, or ``None``.

        Same miss/quarantine contract as :meth:`read`, but the payload
        comes back as an :class:`ArtifactView` backed by the OS page
        cache instead of copied bytes — the read path that lets a cached
        compiled topology directly back a shared zero-copy engine view
        (see :mod:`repro.simulation.fastpath.shm`).
        """
        path = self.path_for(stage, key)
        fault_point("latency", f"{stage}/{key}")
        try:
            return open_artifact_view(path, stage)
        except OSError:
            return None
        except Exception:
            # Same contract as ``read``: corruption and version drift are
            # misses; the invalid file is quarantined, never re-decoded.
            self._quarantine(stage, path)
            return None

    def write(self, stage: str, key: str, payload: bytes) -> pathlib.Path | None:
        """Atomically persist one artifact payload.

        Args:
            stage: pipeline stage name.
            key: the artifact's content address.
            payload: the codec-encoded bytes.

        Returns:
            The final file path, or ``None`` when the store is degraded
            (persistent write errors already disabled the disk tier).

        Raises:
            OSError: if the filesystem rejects the write (callers treat the
                disk tier as best-effort and may swallow this); after
                ``degrade_after`` consecutive failures the store degrades
                and stops raising — later writes are skipped.
        """
        if self.degraded:
            return None
        path = self.path_for(stage, key)
        identity = f"{stage}/{key}"
        data = pack((self._header(stage), payload))
        try:
            fault_point("latency", identity)
            fault_point("store-write", identity)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key}.", suffix=".tmp", dir=path.parent
            )
        except OSError:
            self._note_write_failure()
            raise
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(error, OSError):
                self._note_write_failure()
            raise
        self._consecutive_write_failures = 0
        corrupt_artifact(path, identity)
        return path

    def _note_write_failure(self) -> None:
        """Count one failed write; trip degraded mode when persistent."""
        self.write_failures += 1
        self._consecutive_write_failures += 1
        if self._consecutive_write_failures >= self.degrade_after:
            self.degraded = True

    def _quarantine(self, stage: str, path: pathlib.Path) -> None:
        """Move an invalid artifact file aside so it is never re-decoded.

        Content addressing guarantees the file can never become valid for
        its key, so the move both rules out repeated decode attempts and
        keeps the bytes around for post-mortem inspection.  Failure to
        move (e.g. a read-only filesystem) still leaves the read a miss.
        """
        target = self.root / QUARANTINE_DIR / stage / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            return
        self.quarantined_reads += 1

    def _header(self, stage: str) -> tuple:
        """The expected file header of one stage's artifacts."""
        return _expected_header(stage)

    # -- maintenance -----------------------------------------------------------

    def _artifact_files(self, stage_dir: pathlib.Path) -> list[pathlib.Path]:
        """The stage's artifact files, tolerating concurrent deletion."""
        try:
            return sorted(stage_dir.rglob(f"*{_SUFFIX}"))
        except OSError:
            return []

    def health(self) -> dict:
        """Degradation and quarantine counters of the disk tier.

        Returns:
            ``degraded``/``write_failures``/``quarantined_reads`` reflect
            this store instance (in-process); ``quarantined_files`` counts
            the files currently under ``<root>/quarantine/`` on disk, so it
            is visible across processes (e.g. to ``repro cache stats``).
        """
        quarantine_root = self.root / QUARANTINE_DIR
        quarantined_files = 0
        if quarantine_root.is_dir():
            quarantined_files = len(self._artifact_files(quarantine_root))
        return {
            "degraded": self.degraded,
            "write_failures": self.write_failures,
            "quarantined_reads": self.quarantined_reads,
            "quarantined_files": quarantined_files,
        }

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-stage artifact counts and byte totals of the disk tier.

        Returns:
            Mapping ``stage -> {"artifacts": n, "bytes": total}`` for every
            stage directory present under the root, sorted by stage name.
            Files removed by a concurrent writer or ``clear`` mid-walk are
            skipped, never an error.
        """
        result: dict[str, dict[str, int]] = {}
        if not self.root.is_dir():
            return result
        try:
            stage_dirs = sorted(self.root.iterdir())
        except OSError:
            return result
        for stage_dir in stage_dirs:
            if not stage_dir.is_dir() or stage_dir.name in _NON_STAGE_DIRS:
                continue
            count = 0
            total = 0
            for path in self._artifact_files(stage_dir):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue  # vanished mid-walk (concurrent clear/replace)
                count += 1
                total += size
            result[stage_dir.name] = {"artifacts": count, "bytes": total}
        return result

    def clear(self) -> int:
        """Delete every stored artifact file.

        Sweep manifests and case reports under ``<root>/sweeps`` are left
        alone, as are quarantined files under ``<root>/quarantine`` — only
        the content-addressed tier is dropped.  Files already removed by a
        concurrent ``clear`` are skipped.

        Returns:
            The number of artifact files removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        try:
            stage_dirs = sorted(self.root.iterdir())
        except OSError:
            return removed
        for stage_dir in stage_dirs:
            if not stage_dir.is_dir() or stage_dir.name in _NON_STAGE_DIRS:
                continue
            for path in self._artifact_files(stage_dir):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def __repr__(self) -> str:
        """The store's root directory, for logs and error messages."""
        return f"DiskStore({str(self.root)!r})"
