"""Policy-aware BGP route propagation over the annotated AS graph.

The engine plays the role of the real Internet's routers: every originated
prefix is announced by its origin AS and propagated AS by AS under

* the **import policies** of :class:`~repro.simulation.policies.ASPolicy`
  (LOCAL_PREF by relationship/neighbor/prefix, community tagging, loop
  rejection),
* the **decision process** of :class:`~repro.bgp.decision.DecisionProcess`,
  and
* the **export rules** of paper Section 2.2.2 (customer routes go to
  everyone; peer and provider routes go only to customers) plus the
  configured export policies (selective announcement to providers, scoped
  "do not propagate" communities, transit-level selective export, peer
  withholding).

The simulation is message passing to a fixed point, one prefix at a time.
Announcements and withdrawals are both modelled, so ASes whose best route
changes to one they may not export (possible under atypical preferences)
correctly retract their earlier announcement.  With typical (Gao–Rexford)
preferences the process converges; a message budget guards against
pathological policy combinations.

Only the ASes listed in ``observed_ases`` retain their full routing tables
(the others' state is discarded once a prefix has converged), which keeps
memory proportional to the number of vantage points — exactly like the real
measurement study, which only sees tables at RouteViews and a handful of
Looking Glass servers.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.bgp.attributes import Community
from repro.bgp.decision import DecisionProcess
from repro.bgp.rib import LocRib
from repro.bgp.route import NeighborKind, Route, RouteSource, originate
from repro.exceptions import SimulationError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.simulation.policies import (
    PolicyAssignment,
    SCOPED_ANNOUNCEMENT_VALUE,
    scoped_community,
)
from repro.topology.generator import SyntheticInternet
from repro.topology.graph import AnnotatedASGraph, Relationship

#: Map graph relationships onto the route classification of Section 2.2.1.
_RELATIONSHIP_TO_KIND = {
    Relationship.CUSTOMER: NeighborKind.CUSTOMER,
    Relationship.PEER: NeighborKind.PEER,
    Relationship.PROVIDER: NeighborKind.PROVIDER,
    Relationship.SIBLING: NeighborKind.SIBLING,
}


@dataclass
class SimulationResult:
    """Outcome of one propagation run.

    Attributes:
        internet: the synthetic Internet the run used.
        assignment: the policy assignment the run used.
        tables: Loc-RIB per observed AS.
        message_count: total number of announcements/withdrawals processed
            (a rough measure of convergence work, reported by benchmarks).
        truncated_prefixes: prefixes whose propagation hit the message budget
            and was cut short (pathological policy interactions; empty under
            the convergence-safe policies the generator produces).
    """

    internet: SyntheticInternet
    assignment: PolicyAssignment
    tables: dict[ASN, LocRib] = field(default_factory=dict)
    message_count: int = 0
    truncated_prefixes: list[Prefix] = field(default_factory=list)

    def table_of(self, asn: ASN) -> LocRib:
        """Return the routing table observed at ``asn``.

        Raises:
            SimulationError: if the AS was not in the observed set.
        """
        table = self.tables.get(asn)
        if table is None:
            raise SimulationError(f"AS{asn} was not observed during the simulation")
        return table

    @property
    def observed_ases(self) -> list[ASN]:
        """The ASes whose tables were retained."""
        return sorted(self.tables)


class PrefixState:
    """Per-AS state for the prefix currently being propagated."""

    __slots__ = ("candidates", "best", "announced_to")

    def __init__(self) -> None:
        self.candidates: dict[ASN, Route] = {}
        self.best: Route | None = None
        self.announced_to: set[ASN] = set()


@dataclass
class PrefixRun(Mapping):
    """Outcome of propagating a single prefix.

    Behaves as a read-only mapping of ``ASN -> PrefixState`` (what
    ``run_prefix`` historically returned) while also exposing the run
    metadata that used to be silently discarded.

    Attributes:
        states: complete per-AS propagation state for the prefix.
        message_count: announcements/withdrawals processed for this prefix.
        truncated: whether propagation hit the message budget and was cut
            short before reaching a fixed point.
    """

    states: dict[ASN, PrefixState]
    message_count: int = 0
    truncated: bool = False

    def __getitem__(self, asn: ASN) -> PrefixState:
        return self.states[asn]

    def __iter__(self):
        return iter(self.states)

    def __len__(self) -> int:
        return len(self.states)


class PropagationEngine:
    """Propagates every originated prefix and collects tables at vantage ASes.

    Args:
        internet: the synthetic Internet (graph + prefix ownership).
        assignment: per-AS policies.
        observed_ases: ASes whose final tables are retained; defaults to the
            Tier-1 clique.
        message_budget_per_prefix: safety valve against policy-induced
            oscillation; exceeded budgets raise :class:`SimulationError`.
    """

    def __init__(
        self,
        internet: SyntheticInternet,
        assignment: PolicyAssignment,
        observed_ases: list[ASN] | None = None,
        message_budget_per_prefix: int = 500_000,
    ) -> None:
        self.internet = internet
        self.assignment = assignment
        self.graph: AnnotatedASGraph = internet.graph
        self.observed_ases = sorted(
            set(observed_ases if observed_ases is not None else internet.tier1)
        )
        self.message_budget_per_prefix = message_budget_per_prefix
        self.decision = DecisionProcess()
        self._neighbor_index: dict[ASN, dict[ASN, int]] = {}
        # Neighbor classifications are immutable during a run and consulted on
        # every export, so they are cached up front.
        self._customers: dict[ASN, list[ASN]] = {}
        self._providers: dict[ASN, list[ASN]] = {}
        self._peers: dict[ASN, list[ASN]] = {}
        self._siblings: dict[ASN, list[ASN]] = {}
        buckets = {
            Relationship.CUSTOMER: self._customers,
            Relationship.PROVIDER: self._providers,
            Relationship.PEER: self._peers,
            Relationship.SIBLING: self._siblings,
        }
        for asn in self.graph.ases():
            for bucket in buckets.values():
                bucket[asn] = []
            for neighbor, relationship in sorted(self.graph.neighbor_items(asn)):
                buckets[relationship][asn].append(neighbor)

    # -- public API ------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Propagate every originated prefix and return the observed tables."""
        result = SimulationResult(internet=self.internet, assignment=self.assignment)
        for asn in self.observed_ases:
            result.tables[asn] = LocRib(owner=asn, decision=self.decision)
        for origin in sorted(self.internet.originated):
            for prefix in self.internet.prefixes_of(origin):
                states = self._propagate_prefix(prefix, origin, result)
                self._record_observed(states, result)
        return result

    def run_prefix(self, prefix: Prefix, origin: ASN) -> PrefixRun:
        """Propagate a single prefix and return the full per-AS state.

        Exposed for tests and the scenario module, where the complete
        Internet-wide outcome for one prefix is of interest.  The returned
        :class:`PrefixRun` is mapping-compatible with the plain state dict
        earlier versions returned, and additionally carries the message count
        and whether the run was truncated by the message budget.
        """
        result = SimulationResult(internet=self.internet, assignment=self.assignment)
        states = self._propagate_prefix(prefix, origin, result)
        return PrefixRun(
            states=states,
            message_count=result.message_count,
            truncated=bool(result.truncated_prefixes),
        )

    # -- propagation core ------------------------------------------------------------

    def _propagate_prefix(
        self, prefix: Prefix, origin: ASN, result: SimulationResult
    ) -> dict[ASN, PrefixState]:
        states: dict[ASN, PrefixState] = {}
        queue: deque[tuple[ASN, ASN, Route | None]] = deque()

        origin_policy = self.assignment.policy_for(origin)
        local_route = originate(prefix, origin)
        origin_state = states.setdefault(origin, PrefixState())
        origin_state.candidates[origin] = local_route
        origin_state.best = local_route

        self._seed_origin_announcements(
            prefix, origin, origin_policy, local_route, origin_state, queue
        )

        budget = self.message_budget_per_prefix
        processed = 0
        while queue:
            processed += 1
            if processed > budget:
                # Pathological policy interactions (dispute wheels) have no
                # stable outcome; real BGP would oscillate too.  Truncate and
                # report rather than aborting the whole study.
                result.truncated_prefixes.append(prefix)
                break
            sender, receiver, route = queue.popleft()
            if route is None:
                self._receive_withdrawal(sender, receiver, states, queue)
            else:
                self._receive_announcement(sender, receiver, route, states, queue)
        result.message_count += processed
        return states

    def _seed_origin_announcements(
        self,
        prefix: Prefix,
        origin: ASN,
        origin_policy,
        local_route: Route,
        origin_state: PrefixState,
        queue: deque,
    ) -> None:
        providers = self._providers[origin]
        peers = self._peers[origin]
        customers = self._customers[origin]
        siblings = self._siblings[origin]

        plain_providers = origin_policy.providers_for_prefix(prefix, providers)
        scoped_providers = origin_policy.scoped_providers_for_prefix(prefix)
        peer_targets = origin_policy.peers_for_prefix(prefix, peers)

        exported = self._exported_route(local_route, origin)
        for provider in sorted(plain_providers - scoped_providers):
            queue.append((origin, provider, exported))
            origin_state.announced_to.add(provider)
        for provider in sorted(scoped_providers):
            scoped = exported.with_communities(
                exported.communities.add(scoped_community(provider))
            )
            queue.append((origin, provider, scoped))
            origin_state.announced_to.add(provider)
        for target in sorted(peer_targets) + sorted(customers) + sorted(siblings):
            queue.append((origin, target, exported))
            origin_state.announced_to.add(target)

    def _receive_announcement(
        self,
        sender: ASN,
        receiver: ASN,
        route: Route,
        states: dict[ASN, PrefixState],
        queue: deque,
    ) -> None:
        if route.as_path.has_loop_for(receiver):
            return
        relationship = self.graph.relationship(receiver, sender)
        if relationship is None:
            raise SimulationError(
                f"AS{sender} announced a route to non-neighbor AS{receiver}"
            )
        policy = self.assignment.policy_for(receiver)
        local_pref = policy.import_local_pref(sender, relationship, route.prefix)
        communities = route.communities
        if policy.community_plan is not None:
            index = self._index_of_neighbor(receiver, sender)
            communities = communities.add(
                policy.community_plan.community_for(relationship, index)
            )
        imported = Route(
            prefix=route.prefix,
            as_path=route.as_path,
            local_pref=local_pref,
            origin=route.origin,
            med=route.med,
            communities=communities,
            source=RouteSource.EBGP,
            neighbor_kind=_RELATIONSHIP_TO_KIND[relationship],
            learned_from=sender,
        )
        state = states.setdefault(receiver, PrefixState())
        previous_best = state.best
        state.candidates[sender] = imported
        state.best = self.decision.select_best(list(state.candidates.values()))
        if previous_best is not None and self._same_route(previous_best, state.best):
            return
        self._export(receiver, state, queue)

    def _receive_withdrawal(
        self,
        sender: ASN,
        receiver: ASN,
        states: dict[ASN, PrefixState],
        queue: deque,
    ) -> None:
        state = states.get(receiver)
        if state is None or sender not in state.candidates:
            return
        previous_best = state.best
        del state.candidates[sender]
        state.best = self.decision.select_best(list(state.candidates.values()))
        if previous_best is not None and self._same_route(previous_best, state.best):
            return
        self._export(receiver, state, queue)

    def _export(self, asn: ASN, state: PrefixState, queue: deque) -> None:
        targets = self._export_targets(asn, state.best)
        # Withdraw from neighbors that no longer receive an announcement.
        for neighbor in sorted(state.announced_to - targets):
            queue.append((asn, neighbor, None))
        if targets:
            exported = self._exported_route(state.best, asn)
            for neighbor in sorted(targets):
                queue.append((asn, neighbor, exported))
        state.announced_to = targets

    def _export_targets(self, asn: ASN, best: Route | None) -> set[ASN]:
        """The neighbors that receive ``asn``'s current best route."""
        if best is None:
            return set()
        policy = self.assignment.policy_for(asn)
        if not best.is_local and self._is_scoped_at(best, asn) and policy.honor_scoped_communities:
            # The customer asked this AS not to propagate the route further.
            return set()
        targets: set[ASN] = set()
        for customer in self._customers[asn]:
            if customer != best.next_hop_as:
                targets.add(customer)
        for sibling in self._siblings[asn]:
            if sibling != best.next_hop_as:
                targets.add(sibling)
        from_customer_or_local = best.is_local or best.neighbor_kind in (
            NeighborKind.CUSTOMER,
            NeighborKind.SIBLING,
        )
        if not from_customer_or_local:
            return targets
        allowed_providers = policy.export_customer_prefixes_to
        for provider in self._providers[asn]:
            if provider == best.next_hop_as:
                continue
            if (
                not best.is_local
                and allowed_providers is not None
                and provider not in allowed_providers
            ):
                continue
            targets.add(provider)
        for peer in self._peers[asn]:
            if peer != best.next_hop_as:
                targets.add(peer)
        return targets

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _exported_route(route: Route, announcer: ASN) -> Route:
        """Return ``route`` as announced by ``announcer`` to a neighbor."""
        as_path = route.as_path if route.is_local else route.as_path.prepend(announcer)
        return Route(
            prefix=route.prefix,
            as_path=as_path,
            origin=route.origin,
            med=route.med,
            communities=route.communities,
            source=RouteSource.EBGP,
            learned_from=announcer,
        )

    @staticmethod
    def _is_scoped_at(route: Route, asn: ASN) -> bool:
        """``True`` if the route carries a scoped-announcement community for ``asn``."""
        marker = Community(asn % 65536, SCOPED_ANNOUNCEMENT_VALUE)
        return route.communities.has(marker)

    @staticmethod
    def _same_route(left: Route, right: Route | None) -> bool:
        if right is None:
            return False
        # Compare the full wire-visible signature, ORIGIN included: a best
        # route that changes only in ORIGIN still changes what neighbors use
        # at decision step 3 and must be re-announced.
        return left.export_signature == right.export_signature

    def _index_of_neighbor(self, asn: ASN, neighbor: ASN) -> int:
        index_map = self._neighbor_index.get(asn)
        if index_map is None:
            index_map = {n: i for i, n in enumerate(sorted(self.graph.neighbors(asn)))}
            self._neighbor_index[asn] = index_map
        return index_map.get(neighbor, 0)

    def _record_observed(
        self, states: dict[ASN, PrefixState], result: SimulationResult
    ) -> None:
        for asn in self.observed_ases:
            state = states.get(asn)
            if state is None:
                continue
            table = result.tables[asn]
            for route in state.candidates.values():
                table.add_route(route)
