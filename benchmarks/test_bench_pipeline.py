"""Benchmarks of the substrate itself: propagation, inference, data formats.

These measure the cost of the building blocks the table/figure benchmarks sit
on: building the synthetic Internet, propagating routes, inferring
relationships from the collector paths, running the Fig. 4 algorithm, and
round-tripping a table through the MRT-style dump format.
"""

from __future__ import annotations

import io

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.data.mrt import MrtReader, MrtWriter
from repro.relationships.gao import GaoInference
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.propagation import PropagationEngine
from repro.topology.generator import GeneratorParameters, InternetGenerator


def _bench_internet():
    return InternetGenerator(
        GeneratorParameters(seed=99, tier1_count=5, tier2_count=12, tier3_count=30, stub_count=150)
    ).generate()


def test_bench_topology_generation(benchmark):
    internet = benchmark(_bench_internet)
    assert len(internet.graph) == 197


def test_bench_policy_generation(benchmark):
    internet = _bench_internet()
    assignment = benchmark(
        lambda: PolicyGenerator(PolicyParameters(seed=3)).generate(internet)
    )
    assert len(assignment.policies) == len(internet.graph)


def test_bench_route_propagation(benchmark):
    internet = _bench_internet()
    assignment = PolicyGenerator(PolicyParameters(seed=3)).generate(internet)

    def propagate():
        engine = PropagationEngine(internet, assignment, observed_ases=internet.tier1)
        return engine.run()

    result = benchmark.pedantic(propagate, rounds=1, iterations=1, warmup_rounds=0)
    assert result.truncated_prefixes == []
    assert len(result.tables) == len(internet.tier1)


def test_bench_gao_inference(benchmark, dataset):
    paths = dataset.collector.all_paths()
    inferred = benchmark(lambda: GaoInference().infer(paths))
    assert len(inferred.graph) > 0


def test_bench_sa_prefix_algorithm(benchmark, dataset):
    graph = dataset.ground_truth_graph
    provider = dataset.providers_under_study(1)[0]
    table = dataset.result.table_of(provider)
    analyzer = ExportPolicyAnalyzer(graph)
    report = benchmark(lambda: analyzer.find_sa_prefixes(provider, table))
    assert report.customer_prefix_count > 0


def test_bench_mrt_roundtrip(benchmark, dataset):
    provider = dataset.providers_under_study(1)[0]
    table = dataset.result.table_of(provider)

    def roundtrip():
        buffer = io.BytesIO()
        MrtWriter(buffer).write_table(table)
        buffer.seek(0)
        return MrtReader(buffer).read_tables()

    restored = benchmark(roundtrip)
    assert len(restored[provider]) == len(table)
