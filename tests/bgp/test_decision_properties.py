"""Property-based tests for the decision process."""

from hypothesis import given, strategies as st
from strategies import decision_routes

from repro.bgp.decision import DecisionProcess, DecisionStep
from repro.net.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/16")


def routes():
    return decision_routes(PREFIX)


decision = DecisionProcess()


@given(routes(), routes())
def test_comparison_is_antisymmetric(a, b):
    forward = decision.compare(a, b)
    backward = decision.compare(b, a)
    assert forward.step == backward.step
    if forward.winner is None:
        assert backward.winner is None
    else:
        assert backward.winner is forward.winner


@given(routes())
def test_route_never_loses_to_itself(r):
    comparison = decision.compare(r, r)
    assert comparison.winner is None
    assert comparison.step is DecisionStep.TIE


@given(st.lists(routes(), min_size=1, max_size=8))
def test_select_best_is_undominated(candidates):
    best = decision.select_best(candidates)
    assert best is not None
    for challenger in candidates:
        assert decision.compare(best, challenger).winner is not challenger


@given(st.lists(routes(), min_size=1, max_size=8))
def test_best_has_maximal_local_pref(candidates):
    best = decision.select_best(candidates)
    assert best.local_pref == max(r.local_pref for r in candidates)


@given(st.lists(routes(), min_size=1, max_size=6), st.randoms())
def test_selection_attributes_stable_under_shuffle(candidates, rng):
    baseline = decision.select_best(candidates)
    shuffled = list(candidates)
    rng.shuffle(shuffled)
    reshuffled = decision.select_best(shuffled)
    # The selected route may be a different-but-equivalent object only if the
    # two tie completely; otherwise it must be the same route.
    comparison = decision.compare(baseline, reshuffled)
    assert comparison.winner is None
