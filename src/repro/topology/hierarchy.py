"""Tier classification of ASes.

The paper classifies ASes into tiers "using the method described in [8]"
(Subramanian et al., *Characterizing the Internet hierarchy from multiple
vantage points*).  The essence of that method is:

* **Tier 1 (dense core)** — a clique-like set of large, provider-free ASes
  that peer with each other,
* **Tier 2 / transit core** — ASes that have customers and buy transit from
  (or peer near) the core,
* lower tiers — smaller transit networks,
* **stubs** — ASes with no customers.

Exact reproduction of the Subramanian heuristics is not required by the
paper's pipeline (tiers are only used to pick which providers to study and to
describe Tables 2/3/5), so :func:`classify_tiers` implements the structural
definition above on the annotated graph: provider-free ASes that peer among
themselves form Tier 1, and every other AS sits one level below its highest
provider, with stubs reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.asn import ASN
from repro.topology.graph import AnnotatedASGraph


@dataclass
class TierClassification:
    """Result of classifying every AS in a graph into tiers.

    Attributes:
        tiers: mapping from AS to its tier number (1 is the core).
        tier1: the ASes classified as Tier 1.
        stubs: ASes with no customers (they still get a tier number).
    """

    tiers: dict[ASN, int] = field(default_factory=dict)
    tier1: set[ASN] = field(default_factory=set)
    stubs: set[ASN] = field(default_factory=set)

    def tier_of(self, asn: ASN) -> int:
        """Return the tier of an AS (raises ``KeyError`` for unknown ASes)."""
        return self.tiers[asn]

    def ases_in_tier(self, tier: int) -> list[ASN]:
        """Return every AS assigned to the given tier, sorted."""
        return sorted(asn for asn, level in self.tiers.items() if level == tier)

    @property
    def depth(self) -> int:
        """The number of the deepest tier."""
        return max(self.tiers.values(), default=0)


def classify_tiers(graph: AnnotatedASGraph, max_tier: int = 5) -> TierClassification:
    """Classify every AS of the annotated graph into tiers.

    Tier 1 contains ASes with no providers and at least one peer or customer
    (an isolated AS with no links at all is put in the deepest tier).  Every
    other AS is assigned ``1 + min(tier of its providers)``, capped at
    ``max_tier``.  The computation is a breadth-first descent along
    provider-to-customer edges, so it is linear in the number of edges.
    """
    classification = TierClassification()
    # Tier 1: provider-free ASes that are not isolated.
    for asn in graph.ases():
        if not graph.providers_of(asn) and graph.degree(asn) > 0:
            classification.tier1.add(asn)
            classification.tiers[asn] = 1
    # Descend customer edges from the core.
    frontier = sorted(classification.tier1)
    while frontier:
        next_frontier: list[ASN] = []
        for provider in frontier:
            provider_tier = classification.tiers[provider]
            for customer in graph.customers_of(provider):
                proposed = min(provider_tier + 1, max_tier)
                known = classification.tiers.get(customer)
                if known is None or proposed < known:
                    classification.tiers[customer] = proposed
                    next_frontier.append(customer)
        frontier = next_frontier
    # Anything never reached (isolated ASes, or customer-only islands) goes
    # to the deepest tier.
    for asn in graph.ases():
        classification.tiers.setdefault(asn, max_tier)
        if graph.is_stub(asn):
            classification.stubs.add(asn)
    return classification
