"""Shared fixtures of the storage test suite: a tiny study, built once."""

import pytest

from repro.session.cache import StageCache
from repro.session.stages import ObservationParameters, StudyConfig
from repro.session.study import Study
from repro.topology.generator import GeneratorParameters

#: A deliberately tiny configuration: the full six-stage pipeline builds in
#: well under a second, so every codec test can afford fresh studies.
TINY_CONFIG = StudyConfig(
    topology=GeneratorParameters(
        seed=3, tier1_count=3, tier2_count=4, tier3_count=6, stub_count=25
    ),
    observation=ObservationParameters(
        looking_glass_count=4, tier1_looking_glass_count=2, collector_vantage_count=6
    ),
)


@pytest.fixture(scope="session")
def tiny_study() -> Study:
    """A fully built tiny study (memory-only cache), shared by the suite."""
    study = Study(TINY_CONFIG, cache=StageCache())
    study.dataset()
    study.analysis()
    return study
