"""Baseline mechanics: round-trip, ratchet errors, rationale preservation."""

import json

import pytest

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.model import Finding


def _finding(rule="DET001", path="src/x.py", message="iterates a set", line=10):
    return Finding(rule=rule, path=path, line=line, column=0, message=message)


class TestRoundTrip:
    def test_save_load_apply_round_trip(self, tmp_path):
        findings = [_finding(), _finding(rule="POOL002", message="stale state")]
        baseline = Baseline.from_findings(findings)
        for entry in baseline.entries:
            assert entry.rationale == ""
        # Fill rationales the way an author would, then round-trip the file.
        baseline.entries = [
            BaselineEntry(e.rule, e.path, e.message, rationale="known and fine")
            for e in baseline.entries
        ]
        target = tmp_path / "lint-baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        remaining, errors = loaded.apply(findings)
        assert remaining == []
        assert errors == []

    def test_matching_ignores_line_numbers(self, tmp_path):
        baseline = Baseline(
            entries=[BaselineEntry("DET001", "src/x.py", "iterates a set", "ok")]
        )
        remaining, errors = baseline.apply([_finding(line=999)])
        assert remaining == []
        assert errors == []

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == []

    def test_save_is_deterministic_json(self, tmp_path):
        baseline = Baseline(entries=[BaselineEntry("A1", "p", "m", "r")])
        target = tmp_path / "b.json"
        baseline.save(target)
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert payload["entries"][0] == {
            "rule": "A1",
            "path": "p",
            "message": "m",
            "rationale": "r",
        }


class TestRatchet:
    def test_unacknowledged_finding_stays(self):
        remaining, errors = Baseline().apply([_finding()])
        assert len(remaining) == 1
        assert errors == []

    def test_stale_entry_is_an_error(self):
        baseline = Baseline(
            entries=[BaselineEntry("DET001", "src/gone.py", "old message", "ok")]
        )
        remaining, errors = baseline.apply([])
        assert remaining == []
        (error,) = errors
        assert "stale entry" in error
        assert "only shrinks" in error

    def test_empty_rationale_is_an_error(self):
        baseline = Baseline(
            entries=[BaselineEntry("DET001", "src/x.py", "iterates a set", "  ")]
        )
        _, errors = baseline.apply([_finding()])
        assert any("no rationale" in error for error in errors)

    def test_multiplicity_two_findings_need_two_entries(self):
        entry = BaselineEntry("DET001", "src/x.py", "iterates a set", "ok")
        one_entry = Baseline(entries=[entry])
        remaining, errors = one_entry.apply([_finding(line=1), _finding(line=2)])
        assert len(remaining) == 1  # the second identical finding is NOT hidden
        assert errors == []
        two_entries = Baseline(entries=[entry, entry])
        remaining, errors = two_entries.apply([_finding(line=1), _finding(line=2)])
        assert remaining == []
        assert errors == []


class TestRegeneration:
    def test_rationales_survive_regeneration(self):
        previous = Baseline(
            entries=[BaselineEntry("DET001", "src/x.py", "iterates a set", "why")]
        )
        regenerated = Baseline.from_findings(
            [_finding(), _finding(rule="POOL001", message="lambda")], previous
        )
        by_rule = {entry.rule: entry for entry in regenerated.entries}
        assert by_rule["DET001"].rationale == "why"
        assert by_rule["POOL001"].rationale == ""

    def test_entries_sorted_by_key(self):
        regenerated = Baseline.from_findings(
            [_finding(rule="Z9", message="z"), _finding(rule="A1", message="a")]
        )
        assert [entry.rule for entry in regenerated.entries] == ["A1", "Z9"]


class TestMalformedFiles:
    def test_invalid_json_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            Baseline.load(target)

    def test_foreign_version_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version 1"):
            Baseline.load(target)

    def test_missing_entry_key_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text('{"version": 1, "entries": [{"rule": "X"}]}')
        with pytest.raises(ValueError, match="entry 0"):
            Baseline.load(target)
