"""Property-based tests for the prefix algebra (hypothesis)."""

from hypothesis import given, strategies as st
from strategies import prefixes

from repro.net.prefix import IPV4_MAX, Prefix, aggregate_prefixes, format_ipv4, parse_ipv4


@given(st.integers(min_value=0, max_value=IPV4_MAX))
def test_ipv4_parse_format_roundtrip(value):
    assert parse_ipv4(format_ipv4(value)) == value


@given(prefixes())
def test_prefix_string_roundtrip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(prefixes())
def test_prefix_contains_itself(prefix):
    assert prefix.contains(prefix)
    assert prefix.is_subnet_of(prefix)


@given(prefixes(max_length=31))
def test_subnets_partition_parent(prefix):
    children = list(prefix.subnets())
    assert len(children) == 2
    assert children[0] != children[1]
    assert sum(child.size for child in children) == prefix.size
    for child in children:
        assert prefix.contains(child)
        assert child.supernet() == prefix


@given(prefixes(min_length=1))
def test_supernet_contains_child(prefix):
    assert prefix.supernet().contains(prefix)


@given(prefixes(), prefixes())
def test_common_supernet_covers_both(a, b):
    common = a.common_supernet(b)
    assert common.contains(a)
    assert common.contains(b)


@given(prefixes(), prefixes())
def test_containment_is_antisymmetric_up_to_equality(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b


@given(prefixes(max_length=31))
def test_sibling_aggregation_roundtrip(prefix):
    left, right = prefix.subnets()
    assert left.can_aggregate_with(right)
    assert left.aggregate_with(right) == prefix


@given(st.lists(prefixes(min_length=8, max_length=28), max_size=40))
def test_aggregate_prefixes_preserves_coverage(prefix_list):
    aggregated = aggregate_prefixes(prefix_list)
    # Every original prefix is covered by some aggregated prefix.
    for original in prefix_list:
        assert any(agg.contains(original) for agg in aggregated)
    # No aggregated prefix is covered by another one.
    for i, a in enumerate(aggregated):
        for j, b in enumerate(aggregated):
            if i != j:
                assert not a.contains(b)


@given(st.lists(prefixes(), max_size=30))
def test_aggregate_is_idempotent(prefix_list):
    once = aggregate_prefixes(prefix_list)
    assert aggregate_prefixes(once) == once
