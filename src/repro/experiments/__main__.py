"""Legacy command-line entry point — thin shim over ``python -m repro``.

Usage::

    python -m repro.experiments                 # run everything (standard scenario)
    python -m repro.experiments table5 fig2     # run selected experiments
    python -m repro.experiments --small         # use the small scenario (quick)
    python -m repro.experiments --list          # list experiment identifiers

New code should call ``python -m repro run`` directly, which adds
``--scenario``, ``--seed``, ``--workers``, ``--json`` and ``--output-dir``.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import main as cli_main


def main(argv: list[str] | None = None) -> int:
    """Translate the legacy flags and delegate to :mod:`repro.cli`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the tables and figures of Wang & Gao (IMC 2003).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment identifiers to run (default: all)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the small scenario for a quick run",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_only", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_only:
        return cli_main(["list"])
    forwarded = ["run", *args.experiments]
    if args.small:
        forwarded += ["--scenario", "small"]
    return cli_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
