"""Built-in scenario families: seeded samplers over the scenario space.

Each family varies one axis of the paper's measurement setup while drawing
every other knob (topology sizes, stage seeds, policy mix) from the same
seeded random source, so a handful of samples already covers far more
structural diversity than the five registered presets:

* ``peering-density(p)`` — lateral peering probability from none to
  near-mesh, stressing peer-route selection and the Table 10 analyses.
* ``multihoming(k)`` — stub multihoming rate and provider fan-out, the
  paper's main cause of SA prefixes (Table 8).
* ``hierarchy-depth(d)`` — two- vs three-tier transit hierarchies and how
  often stubs attach straight to Tier-1s.
* ``community-adoption(r)`` — how many ASes tag relationship communities
  (Table 4 / Appendix) and how much prefix-based LOCAL_PREF noise exists.
* ``collector-size(n)`` — how many vantage ASes peer with the collector
  (the paper's Oregon server has 56; small collectors starve the
  inference).

Samplers are pure functions of the seed: they derive everything from one
``random.Random`` keyed on ``(family name, seed)`` (string seeding is
deterministic across processes), so a failing fuzz case is reproducible
from the ``(family, seed)`` pair alone.

Topologies stay deliberately small (~45-90 ASes): the fuzz harness runs the
*legacy* propagation engine and the *legacy* analyzers on every sample as
the differential baseline, and small samples keep hundreds of cases cheap.
"""

from __future__ import annotations

import random

from repro.session.scenarios import register_family
from repro.session.stages import IrrParameters, ObservationParameters, StudyConfig
from repro.simulation.policies import PolicyParameters
from repro.topology.generator import GeneratorParameters

#: Upper bound (exclusive) for derived stage seeds.
_SEED_SPACE = 1 << 30


def _family_rng(family: str, seed: int) -> random.Random:
    """The deterministic random source of one ``(family, seed)`` sample.

    Args:
        family: the family name (part of the stream key, so two families
            sampled at the same seed draw independent streams).
        seed: the sample seed.

    Returns:
        A ``random.Random`` seeded on a string key — CPython hashes string
        seeds with SHA-512, so the stream is identical in every process.
    """
    return random.Random(f"repro.fuzz:{family}:{seed}")


def _observation(rng: random.Random, tier1_count: int) -> ObservationParameters:
    """A small, valid observation plan drawn from ``rng``.

    Args:
        rng: the sample's random source.
        tier1_count: size of the sampled Tier-1 clique (bounds how many
            Tier-1 Looking Glasses can exist).

    Returns:
        Observation parameters with 4-7 Looking Glasses and a 6-12 peer
        collector.
    """
    looking_glass_count = rng.randint(4, 7)
    return ObservationParameters(
        looking_glass_count=looking_glass_count,
        tier1_looking_glass_count=min(rng.randint(1, 3), tier1_count, looking_glass_count),
        collector_vantage_count=rng.randint(6, 12),
        seed=rng.randrange(_SEED_SPACE),
    )


def _policy(rng: random.Random, **overrides: float) -> PolicyParameters:
    """Policy parameters with a derived seed plus per-family overrides.

    Args:
        rng: the sample's random source.
        **overrides: keyword overrides forwarded to
            :class:`~repro.simulation.policies.PolicyParameters`.

    Returns:
        The policy parameter set of the sample.
    """
    return PolicyParameters(seed=rng.randrange(_SEED_SPACE), **overrides)


def _irr(rng: random.Random) -> IrrParameters:
    """IRR parameters with a derived seed and a varied registration rate."""
    return IrrParameters(
        registration_probability=round(rng.uniform(0.5, 0.9), 3),
        stale_probability=round(rng.uniform(0.05, 0.3), 3),
        seed=rng.randrange(_SEED_SPACE),
    )


def _topology(rng: random.Random, tier1_count: int, **overrides) -> GeneratorParameters:
    """A small fuzz-sized topology with a derived seed.

    Args:
        rng: the sample's random source.
        tier1_count: size of the Tier-1 clique.
        **overrides: keyword overrides forwarded to
            :class:`~repro.topology.generator.GeneratorParameters`.

    Returns:
        Generator parameters for a ~45-90 AS synthetic Internet.
    """
    base = dict(
        seed=rng.randrange(_SEED_SPACE),
        tier1_count=tier1_count,
        tier2_count=rng.randint(5, 8),
        tier3_count=rng.randint(6, 10),
        stub_count=rng.randint(28, 44),
        prefixes_per_stub=rng.randint(2, 3),
    )
    base.update(overrides)
    return GeneratorParameters(**base)


def _sample_peering_density(seed: int) -> StudyConfig:
    """Sample ``peering-density``: lateral peering from none to near-mesh."""
    rng = _family_rng("peering-density", seed)
    density = rng.uniform(0.0, 0.9)
    tier1_count = rng.randint(3, 5)
    topology = _topology(
        rng,
        tier1_count,
        tier2_peering_probability=round(density, 3),
        tier3_peering_probability=round(density / 3, 3),
        stub_peering_probability=round(density / 20, 4),
    )
    return StudyConfig(
        topology=topology,
        policy=_policy(rng),
        observation=_observation(rng, tier1_count),
        irr=_irr(rng),
    )


def _sample_multihoming(seed: int) -> StudyConfig:
    """Sample ``multihoming``: stub multihoming rate and provider fan-out."""
    rng = _family_rng("multihoming", seed)
    multihoming = rng.uniform(0.0, 1.0)
    max_providers = rng.randint(2, 4)
    tier1_count = rng.randint(3, 5)
    topology = _topology(
        rng,
        tier1_count,
        stub_multihoming_probability=round(multihoming, 3),
        max_stub_providers=max_providers,
        stub_tier1_probability=round(rng.uniform(0.1, 0.5), 3),
    )
    return StudyConfig(
        topology=topology,
        policy=_policy(
            rng,
            selective_announcement_probability=round(rng.uniform(0.2, 0.7), 3),
        ),
        observation=_observation(rng, tier1_count),
        irr=_irr(rng),
    )


def _sample_hierarchy_depth(seed: int) -> StudyConfig:
    """Sample ``hierarchy-depth``: two- vs three-tier transit hierarchies."""
    rng = _family_rng("hierarchy-depth", seed)
    depth = rng.choice((2, 3))
    tier1_count = rng.randint(3, 5)
    topology = _topology(
        rng,
        tier1_count,
        tier3_count=0 if depth == 2 else rng.randint(6, 12),
        stub_tier1_probability=round(rng.uniform(0.05, 0.6), 3),
    )
    return StudyConfig(
        topology=topology,
        policy=_policy(rng),
        observation=_observation(rng, tier1_count),
        irr=_irr(rng),
    )


def _sample_community_adoption(seed: int) -> StudyConfig:
    """Sample ``community-adoption``: tagging rate and LOCAL_PREF noise."""
    rng = _family_rng("community-adoption", seed)
    adoption = rng.uniform(0.0, 1.0)
    tier1_count = rng.randint(3, 5)
    topology = _topology(rng, tier1_count)
    return StudyConfig(
        topology=topology,
        policy=_policy(
            rng,
            community_tagging_probability=round(adoption, 3),
            prefix_based_fraction=round(rng.uniform(0.0, 0.08), 4),
            atypical_scheme_probability=round(rng.uniform(0.0, 0.06), 4),
        ),
        observation=_observation(rng, tier1_count),
        irr=_irr(rng),
    )


def _sample_collector_size(seed: int) -> StudyConfig:
    """Sample ``collector-size``: vantage counts from starved to Oregon-like."""
    rng = _family_rng("collector-size", seed)
    vantage_count = rng.randint(4, 28)
    tier1_count = rng.randint(3, 5)
    topology = _topology(rng, tier1_count)
    looking_glass_count = rng.randint(4, 10)
    observation = ObservationParameters(
        looking_glass_count=looking_glass_count,
        tier1_looking_glass_count=min(rng.randint(1, 3), tier1_count, looking_glass_count),
        collector_vantage_count=vantage_count,
        seed=rng.randrange(_SEED_SPACE),
    )
    return StudyConfig(
        topology=topology,
        policy=_policy(rng),
        observation=observation,
        irr=_irr(rng),
    )


register_family(
    "peering-density",
    "lateral peering probability swept from none to near-mesh",
    "p = tier-2 peering probability in [0, 0.9] (tier-3 p/3, stubs p/20)",
    _sample_peering_density,
)

register_family(
    "multihoming",
    "stub multihoming rate and provider fan-out (the main SA-prefix cause)",
    "m in [0, 1] multihoming probability, k in [2, 4] max providers",
    _sample_multihoming,
)

register_family(
    "hierarchy-depth",
    "two- vs three-tier transit hierarchies with varied Tier-1 stub attach",
    "d in {2, 3} transit tiers, stub->Tier-1 attach probability in [0.05, 0.6]",
    _sample_hierarchy_depth,
)

register_family(
    "community-adoption",
    "fraction of ASes tagging relationship communities, plus LOCAL_PREF noise",
    "r in [0, 1] tagging probability, prefix-based LOCAL_PREF fraction in [0, 0.08]",
    _sample_community_adoption,
)

register_family(
    "collector-size",
    "collector vantage count from starved (4 peers) to Oregon-like (28 peers)",
    "n in [4, 28] collector vantage ASes, 4-10 Looking Glasses",
    _sample_collector_size,
)
