"""Test-suite root conftest.

Makes the shared test helpers (``tests/strategies.py``) importable from
every test module regardless of which subdirectory it lives in: pytest's
default import mode only puts each test file's own directory on
``sys.path``, so the suite-wide helper directory is added here once.
"""

import pathlib
import sys

_TESTS_DIR = str(pathlib.Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)
