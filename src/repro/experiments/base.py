"""Experiment abstractions shared by every table/figure reproduction."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.data.dataset import StudyDataset
from repro.reporting.tables import ascii_table


@dataclass
class ExperimentResult:
    """The reproduced rows of one table or figure.

    Attributes:
        experiment_id: registry identifier ("table5", "fig6", ...).
        title: human-readable title.
        paper_reference: which table/figure and section of the paper this
            reproduces.
        headers: column headers of the reproduced table / series.
        rows: the data rows.
        notes: free-form remarks (e.g. the paper's headline numbers to
            compare against, or caveats about the synthetic substrate).
    """

    experiment_id: str
    title: str
    paper_reference: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Render the result as an ASCII table with notes."""
        parts = [
            f"== {self.experiment_id}: {self.title}",
            f"   (reproduces {self.paper_reference})",
            ascii_table(self.headers, self.rows),
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


class Experiment(abc.ABC):
    """Base class for one table/figure reproduction."""

    #: Registry identifier, e.g. ``"table5"``.
    experiment_id: str = ""
    #: Human-readable title.
    title: str = ""
    #: The table/figure and section of the paper being reproduced.
    paper_reference: str = ""

    @abc.abstractmethod
    def run(self, dataset: StudyDataset) -> ExperimentResult:
        """Execute the experiment against a study dataset."""

    def _result(self) -> ExperimentResult:
        """Create an empty result pre-filled with this experiment's metadata."""
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            paper_reference=self.paper_reference,
        )
