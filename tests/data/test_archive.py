"""Tests for the on-disk dataset archive (export + load + analyse)."""

import pytest

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.core.import_policy import ImportPolicyAnalyzer
from repro.data.archive import export_dataset, load_dataset
from repro.data.dataset import small_dataset
from repro.exceptions import DataFormatError
from repro.simulation.collector import LookingGlass
from repro.topology.graph import Relationship


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def archive_root(dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("study-archive")
    export_dataset(dataset, root)
    return root


@pytest.fixture(scope="module")
def archive(archive_root):
    return load_dataset(archive_root)


class TestExportLayout:
    def test_manifest_written(self, archive_root):
        manifest = (archive_root / "MANIFEST.txt").read_text()
        assert "repro study-dataset archive" in manifest

    def test_one_mrt_file_per_observed_as(self, dataset, archive_root):
        files = list((archive_root / "rib").glob("AS*.mrt"))
        assert len(files) == len(dataset.result.observed_ases)

    def test_one_text_table_per_looking_glass(self, dataset, archive_root):
        files = list((archive_root / "looking_glass").glob("AS*.txt"))
        assert len(files) == len(dataset.looking_glass_ases)

    def test_relationship_and_prefix_files(self, archive_root):
        assert (archive_root / "relationships" / "edges.csv").exists()
        assert (archive_root / "prefixes" / "originated.csv").exists()
        assert (archive_root / "irr" / "irr.db").exists()


class TestLoadRoundtrip:
    def test_tables_match_observed_ases(self, dataset, archive):
        assert archive.observed_ases == dataset.result.observed_ases
        for asn in archive.observed_ases:
            assert len(archive.tables[asn]) == len(dataset.result.table_of(asn))

    def test_looking_glass_tables_loaded(self, dataset, archive):
        assert archive.looking_glass_ases == sorted(dataset.looking_glass_ases)

    def test_graph_matches_ground_truth(self, dataset, archive):
        truth = dataset.ground_truth_graph
        assert len(archive.graph) == len(truth)
        assert archive.graph.edge_count() == truth.edge_count()
        for asn in truth.ases():
            for neighbor in truth.neighbors(asn):
                assert archive.graph.relationship(asn, neighbor) == truth.relationship(
                    asn, neighbor
                )

    def test_originated_matches_ground_truth(self, dataset, archive):
        for asn, prefixes in dataset.internet.originated.items():
            assert sorted(archive.originated.get(asn, [])) == sorted(prefixes)

    def test_irr_loaded(self, dataset, archive):
        assert len(archive.irr) == len(dataset.irr)

    def test_best_routes_preserved(self, dataset, archive):
        provider = dataset.providers_under_study(1)[0]
        original = dataset.result.table_of(provider)
        restored = archive.tables[provider]
        for entry in original.entries():
            if entry.best is None or entry.best.is_local:
                continue
            restored_best = restored.best_route(entry.prefix)
            assert restored_best is not None
            assert restored_best.as_path == entry.best.as_path


class TestAnalysesOnArchive:
    def test_sa_prefixes_identical_before_and_after_roundtrip(self, dataset, archive):
        provider = dataset.providers_under_study(1)[0]
        analyzer_live = ExportPolicyAnalyzer(dataset.ground_truth_graph)
        analyzer_disk = ExportPolicyAnalyzer(archive.graph)
        live = analyzer_live.find_sa_prefixes(provider, dataset.result.table_of(provider))
        disk = analyzer_disk.find_sa_prefixes(provider, archive.tables[provider])
        assert disk.sa_prefix_set() == live.sa_prefix_set()
        assert disk.customer_prefix_count == live.customer_prefix_count

    def test_import_policy_analysis_on_archived_looking_glass(self, dataset, archive):
        asn = dataset.looking_glass_ases[0]
        analyzer = ImportPolicyAnalyzer(archive.graph)
        glass = LookingGlass(asn, archive.looking_glass_tables[asn])
        result = analyzer.analyze_looking_glass(glass)
        live = ImportPolicyAnalyzer(dataset.ground_truth_graph).analyze_looking_glass(
            dataset.looking_glass_of(asn)
        )
        assert result.comparable_prefixes == live.comparable_prefixes
        assert abs(result.percent_typical - live.percent_typical) < 1.0


class TestErrors:
    def test_load_non_archive_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_dataset(tmp_path)

    def test_malformed_edges_rejected(self, tmp_path):
        (tmp_path / "MANIFEST.txt").write_text("x\n")
        (tmp_path / "relationships").mkdir()
        (tmp_path / "relationships" / "edges.csv").write_text("kind,left,right\nbogus,1\n")
        with pytest.raises(DataFormatError):
            load_dataset(tmp_path)

    def test_malformed_prefix_file_rejected(self, tmp_path):
        (tmp_path / "MANIFEST.txt").write_text("x\n")
        (tmp_path / "prefixes").mkdir()
        (tmp_path / "prefixes" / "originated.csv").write_text("origin_as,prefix\nabc,\n")
        with pytest.raises(DataFormatError):
            load_dataset(tmp_path)

    def test_unknown_relationship_kind_rejected(self, tmp_path):
        (tmp_path / "MANIFEST.txt").write_text("x\n")
        (tmp_path / "relationships").mkdir()
        (tmp_path / "relationships" / "edges.csv").write_text("kind,left,right\nfoo,1,2\n")
        with pytest.raises(DataFormatError):
            load_dataset(tmp_path)

    def test_sibling_edges_roundtrip(self, tmp_path, dataset):
        # Add a sibling edge to the exported graph and make sure it survives.
        root = export_dataset(dataset, tmp_path / "archive")
        edges = (root / "relationships" / "edges.csv").read_text()
        (root / "relationships" / "edges.csv").write_text(edges + "s2s,900001,900002\n")
        archive = load_dataset(root)
        assert archive.graph.relationship(900001, 900002) is Relationship.SIBLING
