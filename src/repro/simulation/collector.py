"""Vantage points: RouteViews-style collectors and Looking Glass views.

The paper combines two kinds of vantage points (Section 3):

* the **Oregon RouteViews** collector, which peers with 56 ASes and records
  each peer's best routes (AS paths only — no LOCAL_PREF), and
* **Looking Glass servers** at 15 ASes, where fine-grained information —
  LOCAL_PREF and communities — is visible, and where one AS's table can be
  inspected from several backbone routers (the AT&T view of Fig. 2b).

:class:`RouteViewsCollector` and :class:`LookingGlass` reproduce those two
data granularities on top of a :class:`~repro.simulation.propagation.SimulationResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.bgp.rib import LocRib
from repro.bgp.route import Route
from repro.exceptions import SimulationError
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.propagation import SimulationResult


@dataclass(frozen=True)
class CollectorEntry:
    """One row of a collector table: a peer's best route to a prefix."""

    vantage: ASN
    prefix: Prefix
    as_path: ASPath

    @property
    def origin_as(self) -> ASN:
        """The AS originating the prefix."""
        return self.as_path.origin_as


@dataclass
class CollectorTable:
    """The merged table of a RouteViews-style collector.

    Attributes:
        entries: one entry per (vantage AS, prefix) pair.
    """

    entries: list[CollectorEntry] = field(default_factory=list)

    def all_paths(self) -> list[ASPath]:
        """Every AS path in the table (the input to relationship inference)."""
        return [entry.as_path for entry in self.entries]

    def vantages(self) -> list[ASN]:
        """The peer ASes contributing to the table."""
        return sorted({entry.vantage for entry in self.entries})

    def prefixes(self) -> list[Prefix]:
        """Every prefix appearing in the table."""
        return sorted({entry.prefix for entry in self.entries})

    def entries_for_prefix(self, prefix: Prefix) -> list[CollectorEntry]:
        """Every vantage's entry for one prefix."""
        return [entry for entry in self.entries if entry.prefix == prefix]

    def entries_from_vantage(self, vantage: ASN) -> list[CollectorEntry]:
        """The rows contributed by one vantage AS."""
        return [entry for entry in self.entries if entry.vantage == vantage]

    def paths_containing(self, asn: ASN) -> Iterator[ASPath]:
        """Every path in which ``asn`` appears (used by path-activeness checks)."""
        for entry in self.entries:
            if entry.as_path.contains(asn):
                yield entry.as_path

    def __len__(self) -> int:
        return len(self.entries)


class RouteViewsCollector:
    """Builds a :class:`CollectorTable` from a simulation result.

    The collector "peers" with the given vantage ASes: for every prefix in a
    vantage's table, the vantage's best route is recorded with the vantage AS
    prepended (exactly what a route announced to the collector would carry).
    """

    def __init__(self, vantage_ases: list[ASN]) -> None:
        if not vantage_ases:
            raise SimulationError("a collector needs at least one vantage AS")
        self.vantage_ases = sorted(set(vantage_ases))

    def collect(self, result: SimulationResult) -> CollectorTable:
        """Assemble the collector table from the observed vantage tables."""
        table = CollectorTable()
        for vantage in self.vantage_ases:
            loc_rib = result.table_of(vantage)
            for route in loc_rib.best_routes():
                as_path = route.as_path if route.is_local else route.as_path.prepend(vantage)
                if route.is_local and route.as_path.origin_as != vantage:
                    as_path = route.as_path.prepend(vantage)
                table.entries.append(
                    CollectorEntry(vantage=vantage, prefix=route.prefix, as_path=as_path)
                )
        return table


class LookingGlass:
    """Fine-grained view of one AS's routing table.

    Exposes the full Loc-RIB (all candidate routes, LOCAL_PREF, communities)
    the way a ``show ip bgp`` session on the AS's router would, plus
    synthetic per-router views used by the Fig. 2(b) consistency study.
    """

    def __init__(self, asn: ASN, table: LocRib) -> None:
        self.asn = asn
        self.table = table

    @classmethod
    def from_result(cls, result: SimulationResult, asn: ASN) -> "LookingGlass":
        """Build the Looking Glass of an observed AS."""
        return cls(asn, result.table_of(asn))

    # -- queries mirroring the paper's usage -----------------------------------

    def best_routes(self) -> list[Route]:
        """The best route of every prefix."""
        return list(self.table.best_routes())

    def routes_for(self, prefix: Prefix) -> list[Route]:
        """All candidate routes for a prefix (best first)."""
        entry = self.table.entry(prefix)
        if entry is None:
            return []
        routes = [entry.best] if entry.best is not None else []
        routes.extend(entry.alternatives())
        return routes

    def show_ip_bgp(self, prefix: Prefix) -> list[Route]:
        """Alias of :meth:`routes_for` matching the IOS command the paper quotes."""
        return self.routes_for(prefix)

    def neighbors(self) -> list[ASN]:
        """Every next-hop AS present in the table."""
        return sorted(self.table.neighbors())

    def prefix_count_by_neighbor(self) -> dict[ASN, int]:
        """Number of prefixes announced by each next-hop AS (all candidate routes).

        This is the quantity plotted in the Appendix's Fig. 9 and used to
        infer community semantics.
        """
        counts: dict[ASN, int] = {}
        for entry in self.table.entries():
            for route in entry.routes:
                if route.is_local:
                    continue
                counts[route.next_hop_as] = counts.get(route.next_hop_as, 0) + 1
        return counts

    # -- multi-router views (Fig. 2b) ----------------------------------------------

    def router_views(
        self,
        router_count: int,
        per_prefix_override_fraction: float = 0.05,
        seed: int = 7,
    ) -> list[LocRib]:
        """Synthesize per-router tables of this AS.

        Real backbone routers of one AS mostly share the AS-wide policy but
        occasionally carry router-local, per-prefix LOCAL_PREF tweaks.  Each
        synthetic router view copies the AS table and rewrites the LOCAL_PREF
        of a small random fraction of prefixes, reproducing the "mostly but
        not entirely next-hop-consistent" picture of Fig. 2(b).
        """
        if router_count < 1:
            raise SimulationError("router_count must be at least 1")
        if not (0.0 <= per_prefix_override_fraction <= 1.0):
            raise SimulationError("per_prefix_override_fraction must be a probability")
        rng = random.Random(seed)
        views: list[LocRib] = []
        best_routes = list(self.table.best_routes())
        for router_id in range(1, router_count + 1):
            view = LocRib(owner=self.asn)
            for route in best_routes:
                if rng.random() < per_prefix_override_fraction:
                    tweaked = route.replace(
                        local_pref=rng.choice([80, 85, 95, 115, 120]),
                        router_id=router_id,
                    )
                else:
                    tweaked = route.replace(router_id=router_id)
                view.add_route(tweaked)
            views.append(view)
        return views
