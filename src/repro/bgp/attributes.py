"""BGP path attributes used by the paper's analyses.

Only the attributes the methodology actually touches are modelled:

* ``ORIGIN`` — used at step 3 of the decision process.
* ``LOCAL_PREF`` — the attribute whose assignment the import-policy study
  (Section 4) infers.
* ``MED`` — used at step 4 of the decision process.
* the community attribute — used for relationship tagging (Appendix,
  Table 11) and for "do not announce to X" traffic engineering
  (Section 5.1.5, Case 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import PolicyError
from repro.net.asn import ASN, MAX_ASN16

#: Default LOCAL_PREF value applied by routers when no policy sets one.
DEFAULT_LOCAL_PREF = 100

#: Default MED when the attribute is absent.
DEFAULT_MED = 0


class Origin(enum.IntEnum):
    """The ORIGIN attribute; lower values are preferred (decision step 3)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class WellKnownCommunity(enum.IntEnum):
    """Well-known community values from RFC 1997."""

    NO_EXPORT = 0xFFFFFF01
    NO_ADVERTISE = 0xFFFFFF02
    NO_EXPORT_SUBCONFED = 0xFFFFFF03


@dataclass(frozen=True, order=True)
class Community:
    """A ``asn:value`` BGP community, e.g. ``12859:1000``.

    Attributes:
        asn: the AS that defined the community semantics.
        value: the AS-local value.
    """

    asn: ASN
    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.asn <= MAX_ASN16):
            raise PolicyError(f"community AS part out of range: {self.asn}")
        if not (0 <= self.value <= MAX_ASN16):
            raise PolicyError(f"community value part out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse ``"asn:value"`` notation."""
        asn_text, sep, value_text = text.strip().partition(":")
        if not sep or not asn_text.isdigit() or not value_text.isdigit():
            raise PolicyError(f"invalid community: {text!r}")
        return cls(int(asn_text), int(value_text))

    @classmethod
    def from_int(cls, value: int) -> "Community":
        """Build a community from its 32-bit wire value."""
        if not (0 <= value <= 0xFFFFFFFF):
            raise PolicyError(f"community wire value out of range: {value}")
        return cls(value >> 16, value & MAX_ASN16)

    def to_int(self) -> int:
        """Return the 32-bit wire value."""
        return (self.asn << 16) | self.value

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


class CommunitySet:
    """An immutable set of communities attached to a route.

    Well-known communities may be added either as :class:`WellKnownCommunity`
    members or as their 32-bit values.
    """

    __slots__ = ("_communities", "_well_known")

    def __init__(
        self,
        communities: Iterable[Community | str] = (),
        well_known: Iterable[WellKnownCommunity | int] = (),
    ) -> None:
        parsed = frozenset(
            Community.parse(item) if isinstance(item, str) else item
            for item in communities
        )
        known = frozenset(WellKnownCommunity(item) for item in well_known)
        object.__setattr__(self, "_communities", parsed)
        object.__setattr__(self, "_well_known", known)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CommunitySet objects are immutable")

    def __copy__(self) -> "CommunitySet":
        return self

    def __deepcopy__(self, memo: dict) -> "CommunitySet":
        return self

    def __reduce__(self):
        return (CommunitySet, (tuple(self._communities), tuple(self._well_known)))

    # -- queries -----------------------------------------------------------

    @property
    def communities(self) -> frozenset[Community]:
        """The regular ``asn:value`` communities."""
        return self._communities

    @property
    def well_known(self) -> frozenset[WellKnownCommunity]:
        """The well-known communities present on the route."""
        return self._well_known

    @property
    def no_export(self) -> bool:
        """``True`` if the NO_EXPORT community is attached."""
        return WellKnownCommunity.NO_EXPORT in self._well_known

    @property
    def no_advertise(self) -> bool:
        """``True`` if the NO_ADVERTISE community is attached."""
        return WellKnownCommunity.NO_ADVERTISE in self._well_known

    def has(self, community: Community | str) -> bool:
        """Return ``True`` if the given regular community is attached."""
        if isinstance(community, str):
            community = Community.parse(community)
        return community in self._communities

    def from_asn(self, asn: ASN) -> frozenset[Community]:
        """Return the communities whose AS part is ``asn``."""
        return frozenset(c for c in self._communities if c.asn == asn)

    # -- derivation ----------------------------------------------------------

    def add(self, *communities: Community | str | WellKnownCommunity) -> "CommunitySet":
        """Return a new set with the given communities added."""
        regular = set(self._communities)
        known = set(self._well_known)
        for item in communities:
            if isinstance(item, WellKnownCommunity):
                known.add(item)
            elif isinstance(item, str):
                regular.add(Community.parse(item))
            else:
                regular.add(item)
        return CommunitySet(regular, known)

    def remove(self, *communities: Community | str | WellKnownCommunity) -> "CommunitySet":
        """Return a new set with the given communities removed (if present)."""
        regular = set(self._communities)
        known = set(self._well_known)
        for item in communities:
            if isinstance(item, WellKnownCommunity):
                known.discard(item)
            else:
                if isinstance(item, str):
                    item = Community.parse(item)
                regular.discard(item)
        return CommunitySet(regular, known)

    def without_asn(self, asn: ASN) -> "CommunitySet":
        """Return a new set with every community defined by ``asn`` removed."""
        return CommunitySet(
            (c for c in self._communities if c.asn != asn), self._well_known
        )

    # -- dunder ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Community]:
        return iter(sorted(self._communities))

    def __len__(self) -> int:
        return len(self._communities) + len(self._well_known)

    def __bool__(self) -> bool:
        return bool(self._communities or self._well_known)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunitySet):
            return NotImplemented
        return (
            self._communities == other._communities
            and self._well_known == other._well_known
        )

    def __hash__(self) -> int:
        return hash((self._communities, self._well_known))

    def __str__(self) -> str:
        parts = [str(c) for c in sorted(self._communities)]
        parts.extend(name.name for name in sorted(self._well_known, key=int))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"CommunitySet({str(self)!r})"


#: An empty, shared community set — routes without communities reference this.
EMPTY_COMMUNITIES = CommunitySet()
