"""Resumable, fault-tolerant cross-process sweeps over the artifact store.

The paper's workload is sweep-shaped: the same inference and
characterization analyses re-run across many vantage/policy configurations.
:func:`run_sweep` fans a list of scenario specs (preset names or
``family@seed`` samples) out over worker processes, with every worker
attached to one shared disk tier (``--cache-dir``):

* **stage reuse** — workers share pipeline prefixes through the
  content-addressed store instead of recomputing them: the first case to
  need a topology persists it, every later case (in any process, in any
  later sweep) decodes it.
* **report reuse** — each case's timing-masked suite JSON is itself stored
  under the ``report`` tier, addressed by the full upstream key chain plus
  the experiment list.  A warm-cache sweep re-derives the keys (pure
  fingerprinting, no builds) and serves every case from disk, byte-identical
  to the cold run.
* **resume** — per-case completion is recorded in ``manifest.json`` inside
  the sweep directory, rewritten atomically after every case.  An
  interrupted sweep (crash, SIGKILL, ``fail_after`` test hook) restarts
  with the same arguments, skips every recorded case, and completes the
  remainder.  A manifest that cannot be honoured (other version, other
  experiment set) is reported — stderr note plus
  :attr:`SweepReport.manifest_note` — never silently discarded.
* **fault tolerance** (see ``docs/robustness.md``) — failed case attempts
  are retried with exponential backoff and deterministic jitter
  (``retries`` attempts); a dead worker process (``BrokenProcessPool``)
  respawns the executor, costs only the in-flight cases an attempt, and
  the sweep keeps draining; a case that exhausts its attempts is
  *quarantined* (status ``"quarantined"``, recorded in the manifest so a
  resume does not retry poison) instead of aborting the sweep.
  Deterministic configuration errors (:class:`~repro.exceptions.ReproError`)
  are never retried — they fail the case immediately.  Error messages are
  normalized (paths, PIDs, addresses) so timing-masked sweep JSON stays
  byte-identical across runs and machines.

CLI::

    python -m repro sweep multihoming@0 multihoming@1 --cache-dir .repro-cache
    python -m repro sweep --family peering-density --count 10 --workers 4 \\
        --cache-dir /shared/cache --retries 3 --case-timeout 300
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import re
import sys
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError, ReproError
from repro.faults.plan import FaultPlan
from repro.faults.runtime import PLAN_ENV, activate, fault_point, mark_worker, reset
from repro.session.cache import StageCache, fingerprint
from repro.session.scenarios import get_family, resolve_scenario
from repro.session.stages import PropagationSettings, Stage
from repro.session.suite import run_suite
from repro.storage.store import DiskStore

#: Manifest schema version (bumped on incompatible manifest changes).
MANIFEST_VERSION = 1

#: Environment variable making the orchestrator abort after N completed
#: cases — a deterministic stand-in for "the process was killed mid-sweep",
#: used by the resume smoke tests and CI.
FAIL_AFTER_ENV = "REPRO_SWEEP_FAIL_AFTER"

#: Default retry budget: a case gets ``1 + DEFAULT_RETRIES`` attempts
#: before it is quarantined.
DEFAULT_RETRIES = 2

#: Default first-retry backoff in seconds (doubled per attempt, jittered).
DEFAULT_RETRY_DELAY = 0.05


class SweepInterrupted(ExperimentError):
    """The sweep stopped before finishing; the manifest records progress."""


@dataclass
class SweepCase:
    """Outcome of one sweep case.

    Attributes:
        spec: the scenario spec (preset name or ``family@seed``).
        status: ``"completed"`` (experiments ran), ``"cached"`` (report
            served from the disk tier), ``"resumed"`` (skipped — already in
            the manifest), ``"failed"`` (deterministic error, not retried)
            or ``"quarantined"`` (crashed/timed out on every attempt).
        seconds: wall-clock cost of the case in this run (0 when resumed).
        report_path: path of the case's suite-report JSON file.
        error: the normalized failure message for failed/quarantined cases.
        attempts: how many attempts this run spent on the case (0 when the
            outcome came from the manifest).
        cache_stats: per-stage hit/disk-hit/miss counters of the case's
            cache, plus a ``"store"`` entry with the disk tier's
            degradation/quarantine health (absent for resumed cases).
    """

    spec: str
    status: str
    seconds: float = 0.0
    report_path: str | None = None
    error: str | None = None
    attempts: int = 0
    cache_stats: dict | None = None

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict with a stable key order."""
        return {
            "spec": self.spec,
            "status": self.status,
            "seconds": round(self.seconds, 4) if include_timing else None,
            "report": self.report_path,
            "error": self.error,
            "attempts": self.attempts,
            "cache_stats": self.cache_stats,
        }


#: Every case status, in summary order.
_STATUSES = ("completed", "cached", "resumed", "failed", "quarantined")


@dataclass
class SweepReport:
    """The structured result of one :func:`run_sweep` call.

    Attributes:
        cases: per-case outcomes, in spec order.
        cache_dir: the shared disk tier directory.
        sweep_dir: the sweep's manifest/report directory.
        experiments: experiment ids the sweep ran (``None`` means all).
        workers: process-pool width.
        total_seconds: wall-clock cost of the whole call.
        manifest_note: why an existing manifest was ignored (version or
            experiment-set mismatch), or ``None`` when it was honoured.
    """

    cases: list[SweepCase] = field(default_factory=list)
    cache_dir: str = ""
    sweep_dir: str = ""
    experiments: list[str] | None = None
    workers: int = 1
    total_seconds: float = 0.0
    manifest_note: str | None = None

    @property
    def ok(self) -> bool:
        """``True`` when no case failed or was quarantined."""
        return all(case.status not in ("failed", "quarantined") for case in self.cases)

    def count(self, status: str) -> int:
        """How many cases finished with the given status."""
        return sum(1 for case in self.cases if case.status == status)

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict; ``include_timing=False`` masks all timings."""
        return {
            "cache_dir": self.cache_dir,
            "sweep_dir": self.sweep_dir,
            "experiments": self.experiments,
            "ok": self.ok,
            "manifest_note": self.manifest_note,
            "counts": {status: self.count(status) for status in _STATUSES},
            "cases": [
                case.to_dict(include_timing=include_timing) for case in self.cases
            ],
            "workers": self.workers if include_timing else None,
            "total_seconds": round(self.total_seconds, 4) if include_timing else None,
        }

    def to_json(self, *, include_timing: bool = True, indent: int | None = 2) -> str:
        """Deterministic JSON (byte-identical when timings are masked)."""
        return json.dumps(self.to_dict(include_timing=include_timing), indent=indent)

    def render(self) -> str:
        """A human-readable per-case summary."""
        lines = [
            f"sweep: {len(self.cases)} cases (workers={self.workers}, "
            f"cache={self.cache_dir})"
        ]
        if self.manifest_note:
            lines.append(f"note: {self.manifest_note}")
        markers = {
            "completed": "run ",
            "cached": "hit ",
            "resumed": "skip",
            "quarantined": "QUAR",
        }
        for case in self.cases:
            marker = markers.get(case.status, "FAIL")
            detail = case.error if case.error else f"{case.seconds:.2f}s"
            lines.append(f"{marker} {case.spec:28s} {detail}")
        lines.append(
            f"summary: {self.count('completed')} computed, "
            f"{self.count('cached')} from cache, {self.count('resumed')} resumed, "
            f"{self.count('failed')} failed, "
            f"{self.count('quarantined')} quarantined, {self.total_seconds:.1f}s"
        )
        return "\n".join(lines)


def expand_case_specs(
    cases: list[str] | None,
    families: list[str] | None = None,
    count: int = 5,
    seed: int = 0,
) -> list[str]:
    """The sweep's case list: explicit specs plus family expansions.

    Args:
        cases: explicit scenario specs (presets or ``family@seed``).
        families: family names expanded to ``family@seed .. family@seed+count-1``.
        count: samples per expanded family.
        seed: first sample seed of each expanded family.

    Returns:
        The combined, de-duplicated spec list in request order.

    Raises:
        ExperimentError: on unknown families or an empty case list.
    """
    specs: list[str] = list(cases or [])
    for family in families or []:
        get_family(family)  # validate before spending any build time
        specs.extend(f"{family}@{seed + index}" for index in range(count))
    deduplicated = list(dict.fromkeys(specs))
    if not deduplicated:
        raise ExperimentError(
            "sweep needs at least one case: pass scenario specs or --family"
        )
    return deduplicated


def report_key(study, experiment_ids: list[str] | None, scenario: str) -> str:
    """The content address of one case's suite report.

    Covers every stage key of the study (hence the whole configuration,
    engine choice included), the experiment list and the scenario label
    (recorded inside the report JSON), so any change that could alter the
    report bytes moves the key.
    """
    return fingerprint(
        "suite-report",
        *(study.stage_key(stage) for stage in Stage),
        tuple(experiment_ids) if experiment_ids else "all",
        scenario,
    )


#: Hex memory addresses (``<object at 0x7f...>``).
_HEX_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")

#: Process ids in the common spellings (``pid 123``, ``pid=123``, ``PID: 1``).
_PID = re.compile(r"\b(pid|PID)[=: ]\s*\d+")

#: ``process 12345`` phrasings (e.g. multiprocessing tracebacks).
_PROCESS_ID = re.compile(r"\b([Pp]rocess )\d+")


def normalize_error(message: str, *roots: tuple[str, object]) -> str:
    """A machine-independent rendering of a case failure message.

    Strips the nondeterministic content that would otherwise leak into the
    timing-masked sweep JSON — absolute directory paths (replaced by the
    given placeholders), hex object addresses and process ids — so two
    sweeps failing the same way on different machines report byte-identical
    errors.

    Args:
        message: the raw exception message.
        roots: ``(placeholder, path)`` pairs; every occurrence of
            ``str(path)`` is replaced by the placeholder.
    """
    for placeholder, root in roots:
        if root:
            message = message.replace(str(root), placeholder)
    message = _HEX_ADDRESS.sub("0x<addr>", message)
    message = _PID.sub(r"\1=<pid>", message)
    message = _PROCESS_ID.sub(r"\1<pid>", message)
    return message


def _backoff_delay(base: float, spec: str, attempt: int) -> float:
    """Exponential backoff with deterministic per-(case, attempt) jitter.

    The jitter draw is seeded from the case spec and attempt number —
    retries de-synchronize across workers without global random state, and
    the schedule is reproducible run-to-run.
    """
    jitter = random.Random(f"{spec}:{attempt}").random()
    return base * (2 ** (attempt - 1)) * (0.5 + jitter)


def _case_slug(spec: str) -> str:
    """A filesystem-safe, collision-free file stem for one case spec."""
    clean = re.sub(r"[^A-Za-z0-9_.-]+", "-", spec).strip("-") or "case"
    return f"{clean}-{fingerprint(spec)[:8]}"


def _run_sweep_case(task: tuple[str, tuple[str, ...] | None, str, int]) -> tuple:
    """Process-pool entry point: run (or load) one sweep case.

    Args:
        task: ``(spec, experiment ids or None, cache directory,
        propagation workers)``.

    Returns:
        ``(spec, report JSON, seconds, cache stats, status)`` where status
        is ``"cached"`` when the report came from the disk tier.
    """
    spec, experiments, cache_dir, propagation_workers = task
    fault_point("worker-kill", spec)
    started = time.perf_counter()
    cache = StageCache(disk=DiskStore(cache_dir))
    study = resolve_scenario(spec).study(
        cache=cache,
        propagation=PropagationSettings(workers=propagation_workers),
    )
    ids = list(experiments) if experiments else None

    def build() -> str:
        return run_suite(study, ids, scenario=spec).to_json(include_timing=False)

    json_text = cache.get_or_build(
        "report",
        report_key(study, ids, spec),
        build,
        encode=lambda text: text.encode("utf-8"),
        decode=lambda data: data.decode("utf-8"),
    )
    status = "cached" if cache.stats_for("report").disk_hits else "completed"
    stats = cache.stats_dict()
    health = cache.disk_health()
    if health is not None:
        stats["store"] = health
    return (
        spec,
        json_text,
        time.perf_counter() - started,
        stats,
        status,
    )


class _Manifest:
    """The sweep's crash-safe completion record."""

    def __init__(self, path: pathlib.Path, experiments: list[str] | None) -> None:
        self.path = path
        self.experiments = list(experiments) if experiments else None
        self.cases: dict[str, dict] = {}
        self.stale_reason: str | None = None

    def load(self) -> None:
        """Read an existing manifest; an incompatible one is ignored *and*
        the reason is surfaced via :attr:`stale_reason` (a resume with
        different arguments must not masquerade as a fresh sweep)."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return  # fresh sweep: nothing to resume, nothing to report
        except OSError as error:
            self.stale_reason = f"manifest unreadable ({error.__class__.__name__})"
            return
        try:
            data = json.loads(text)
        except ValueError:
            self.stale_reason = "manifest is not valid JSON"
            return
        if not isinstance(data, dict):
            self.stale_reason = "manifest is not a JSON object"
            return
        if data.get("version") != MANIFEST_VERSION:
            self.stale_reason = (
                f"manifest version {data.get('version')!r} != {MANIFEST_VERSION}"
            )
            return
        if data.get("experiments") != self.experiments:
            self.stale_reason = (
                f"manifest was written for experiments {data.get('experiments')!r}, "
                f"this sweep runs {self.experiments!r}"
            )
            return
        cases = data.get("cases")
        if isinstance(cases, dict):
            self.cases = cases

    def record(self, spec: str, entry: dict) -> None:
        """Record one case and atomically rewrite the manifest file."""
        self.cases[spec] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "version": MANIFEST_VERSION,
                "experiments": self.experiments,
                "cases": self.cases,
            },
            indent=2,
        )
        fd, tmp_name = tempfile.mkstemp(
            prefix=".manifest.", suffix=".tmp", dir=self.path.parent
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(payload + "\n")
        os.replace(tmp_name, self.path)

    def completed(self, spec: str, sweep_dir: pathlib.Path) -> str | None:
        """The report path of an already-completed case, when still valid."""
        entry = self.cases.get(spec)
        if not isinstance(entry, dict) or entry.get("status") != "done":
            return None
        report = entry.get("report")
        if not isinstance(report, str) or not (sweep_dir / report).is_file():
            return None
        return report

    def quarantined(self, spec: str) -> str | None:
        """The recorded error of a quarantined case, or ``None``.

        Quarantine persists across resumes: a case that crashed on every
        attempt is poison and must not be re-run just because the sweep
        restarted (``--no-resume`` clears it).
        """
        entry = self.cases.get(spec)
        if not isinstance(entry, dict) or entry.get("status") != "quarantined":
            return None
        error = entry.get("error")
        return error if isinstance(error, str) else "quarantined"


def run_sweep(
    specs: list[str],
    *,
    cache_dir: str | os.PathLike,
    sweep_dir: str | os.PathLike | None = None,
    experiments: list[str] | None = None,
    workers: int = 1,
    resume: bool = True,
    fail_after: int | None = None,
    retries: int = DEFAULT_RETRIES,
    retry_delay: float = DEFAULT_RETRY_DELAY,
    case_timeout: float | None = None,
    fault_plan: FaultPlan | str | None = None,
    propagation_workers: int = 1,
) -> SweepReport:
    """Run a list of scenario cases over one shared artifact store.

    Args:
        specs: scenario specs (presets or ``family@seed``), e.g. from
            :func:`expand_case_specs`.
        cache_dir: the shared disk tier directory (created on demand).
        sweep_dir: where the manifest and per-case reports live; defaults
            to ``<cache_dir>/sweeps/<digest>`` with the digest derived from
            the case list and experiment set, so re-running the same sweep
            resumes it.
        experiments: experiment ids each case runs (``None`` means all).
        workers: process-pool width; ``1`` runs in-process.
        resume: honour an existing manifest (skip completed cases).
        fail_after: abort (``SweepInterrupted``) after this many cases
            complete in this run — deterministic crash injection for the
            resume tests; also settable via :data:`FAIL_AFTER_ENV`.
        retries: extra attempts a crashing case gets (with exponential
            backoff) before it is quarantined; deterministic errors
            (:class:`~repro.exceptions.ReproError`) are never retried.
        retry_delay: base backoff before the first retry, in seconds
            (doubled per attempt, with deterministic jitter).
        case_timeout: per-attempt wall-clock budget in seconds (pool mode
            only); an attempt past its deadline is abandoned, counted as a
            failure and retried.
        fault_plan: a :class:`~repro.faults.plan.FaultPlan` (or inline
            JSON / file path) activated for the sweep and exported to the
            workers — deterministic chaos for the robustness tests.
        propagation_workers: per-prefix fan-out width each case's fast
            engine uses (zero-copy shard pool).  Because every case shares
            the disk tier, the compiled topology is attached from the
            ``compiled-topology`` store artifact rather than re-compiled or
            re-published per case.  Never enters any cache key — the merged
            artifact is identical for every width.

    Returns:
        The :class:`SweepReport`; per-case JSON files live under
        ``<sweep_dir>/cases/``.

    Raises:
        ExperimentError: on unknown scenarios/families or bad ``workers``.
        SweepInterrupted: when ``fail_after`` fires; completed cases are
            already persisted in the manifest.
    """
    if workers < 1:
        raise ExperimentError(f"sweep workers must be >= 1, got {workers}")
    if retries < 0:
        raise ExperimentError(f"sweep retries must be >= 0, got {retries}")
    if case_timeout is not None and case_timeout <= 0:
        raise ExperimentError(f"case timeout must be > 0 seconds, got {case_timeout}")
    if propagation_workers < 1:
        raise ExperimentError(
            f"propagation workers must be >= 1, got {propagation_workers}"
        )
    for spec in specs:
        resolve_scenario(spec)  # validate every case before starting work
    if fail_after is None:
        raw = os.environ.get(FAIL_AFTER_ENV, "")
        fail_after = int(raw) if raw.isdigit() else None

    plan = FaultPlan.load(fault_plan) if isinstance(fault_plan, str) else fault_plan
    previous_plan_env = os.environ.get(PLAN_ENV)
    if plan is not None:
        activate(plan)  # exported to PLAN_ENV so pool workers inherit it
    try:
        return _run_sweep(
            specs,
            cache_dir=cache_dir,
            sweep_dir=sweep_dir,
            experiments=experiments,
            workers=workers,
            resume=resume,
            fail_after=fail_after,
            retries=retries,
            retry_delay=retry_delay,
            case_timeout=case_timeout,
            propagation_workers=propagation_workers,
        )
    finally:
        if plan is not None:
            if previous_plan_env is None:
                os.environ.pop(PLAN_ENV, None)
            else:
                os.environ[PLAN_ENV] = previous_plan_env
            reset()


def _run_sweep(
    specs: list[str],
    *,
    cache_dir,
    sweep_dir,
    experiments,
    workers,
    resume,
    fail_after,
    retries,
    retry_delay,
    case_timeout,
    propagation_workers=1,
) -> SweepReport:
    """The sweep body (fault-plan activation handled by :func:`run_sweep`)."""
    cache_root = pathlib.Path(cache_dir)
    experiment_ids = sorted(experiments) if experiments else None
    if sweep_dir is None:
        digest = fingerprint(
            "sweep", tuple(specs), tuple(experiment_ids) if experiment_ids else "all"
        )
        sweep_root = cache_root / "sweeps" / digest
    else:
        sweep_root = pathlib.Path(sweep_dir)
    cases_dir = sweep_root / "cases"

    manifest = _Manifest(sweep_root / "manifest.json", experiment_ids)
    manifest_note = None
    if resume:
        manifest.load()
        if manifest.stale_reason is not None:
            manifest_note = (
                f"existing manifest ignored: {manifest.stale_reason}; "
                "recomputing every case"
            )
            print(f"sweep: {manifest_note}", file=sys.stderr)

    roots = (("<cache-dir>", cache_root), ("<sweep-dir>", sweep_root))
    started = time.perf_counter()
    outcomes: dict[str, SweepCase] = {}
    pending: list[str] = []
    for spec in specs:
        report = manifest.completed(spec, sweep_root)
        quarantine_error = manifest.quarantined(spec)
        if report is not None:
            outcomes[spec] = SweepCase(
                spec=spec, status="resumed", report_path=str(sweep_root / report)
            )
        elif quarantine_error is not None:
            outcomes[spec] = SweepCase(
                spec=spec, status="quarantined", error=quarantine_error
            )
        else:
            pending.append(spec)

    finished_this_run = 0
    max_attempts = retries + 1
    attempts: dict[str, int] = {spec: 0 for spec in pending}

    def record(spec: str, json_text: str, seconds: float, stats: dict, status: str):
        nonlocal finished_this_run
        relative = f"cases/{_case_slug(spec)}.json"
        path = sweep_root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_text + "\n")
        manifest.record(
            spec,
            {
                "status": "done",
                "report": relative,
                "result": status,
                "seconds": round(seconds, 4),
                "attempts": attempts[spec],
            },
        )
        outcomes[spec] = SweepCase(
            spec=spec,
            status=status,
            seconds=seconds,
            report_path=str(path),
            attempts=attempts[spec],
            cache_stats=stats,
        )
        finished_this_run += 1
        if fail_after is not None and finished_this_run >= fail_after:
            raise SweepInterrupted(
                f"sweep interrupted after {finished_this_run} case(s) "
                f"(fail_after={fail_after}); resume with the same arguments"
            )

    def fail(spec: str, error: BaseException) -> None:
        """A deterministic error: report the case failed, no retries."""
        outcomes[spec] = SweepCase(
            spec=spec,
            status="failed",
            error=normalize_error(str(error), *roots),
            attempts=attempts[spec],
        )

    def quarantine(spec: str, error: BaseException) -> None:
        """Attempts exhausted: rule the poison case out, keep sweeping."""
        message = normalize_error(str(error), *roots)
        manifest.record(
            spec,
            {"status": "quarantined", "error": message, "attempts": attempts[spec]},
        )
        outcomes[spec] = SweepCase(
            spec=spec, status="quarantined", error=message, attempts=attempts[spec]
        )

    def task_for(spec: str) -> tuple:
        return (
            spec,
            tuple(experiment_ids) if experiment_ids else None,
            str(cache_root),
            propagation_workers,
        )

    cases_dir.mkdir(parents=True, exist_ok=True)
    if workers == 1 or len(pending) <= 1:
        _run_serial(
            pending, task_for, record, fail, quarantine, attempts, max_attempts,
            retry_delay,
        )
    else:
        _run_pool(
            pending, task_for, record, fail, quarantine, attempts, max_attempts,
            retry_delay, workers, case_timeout,
        )

    return SweepReport(
        cases=[outcomes[spec] for spec in specs if spec in outcomes],
        cache_dir=str(cache_root),
        sweep_dir=str(sweep_root),
        experiments=experiment_ids,
        workers=workers,
        total_seconds=time.perf_counter() - started,
        manifest_note=manifest_note,
    )


def _run_serial(
    pending, task_for, record, fail, quarantine, attempts, max_attempts, retry_delay
) -> None:
    """In-process execution with the same retry/quarantine policy."""
    for spec in pending:
        while True:
            attempts[spec] += 1
            try:
                result = _run_sweep_case(task_for(spec))
            except SweepInterrupted:
                raise
            except ReproError as error:
                fail(spec, error)
                break
            except Exception as error:  # noqa: BLE001 - case isolation
                if attempts[spec] >= max_attempts:
                    quarantine(spec, error)
                    break
                time.sleep(_backoff_delay(retry_delay, spec, attempts[spec]))
            else:
                record(*result)
                break


#: Placeholder error recorded when the pool broke under an in-flight case.
_WORKER_DIED = "worker process died while the case was in flight"

#: Placeholder error recorded when a case attempt overran its timeout.
_CASE_TIMEOUT = "case attempt exceeded the per-case timeout"


def _run_pool(
    pending, task_for, record, fail, quarantine, attempts, max_attempts,
    retry_delay, workers, case_timeout,
) -> None:
    """Windowed process-pool execution with crash recovery.

    At most ``workers`` cases are outstanding at any moment, so when the
    pool breaks (a worker died abruptly) the doomed futures are exactly
    the in-flight cases: each costs one attempt and is rescheduled, the
    executor is respawned, and the queued remainder is untouched.  A case
    past its ``case_timeout`` deadline is abandoned (the attempt counts as
    a failure and is retried); its worker keeps running until the attempt
    finishes, but the scheduler no longer waits for it.
    """
    queue: deque[str] = deque(pending)
    retry_ready: dict[str, float] = {}
    outstanding: dict = {}
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=workers, initializer=mark_worker)

    def respawn(reason: str) -> None:
        nonlocal pool
        for spec, _deadline in outstanding.values():
            _attempt_failed(spec, RuntimeError(reason))
        outstanding.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=workers, initializer=mark_worker)

    def _attempt_failed(spec: str, error: BaseException) -> None:
        if attempts[spec] >= max_attempts:
            quarantine(spec, error)
        else:
            retry_ready[spec] = time.monotonic() + _backoff_delay(
                retry_delay, spec, attempts[spec]
            )

    try:
        while queue or retry_ready or outstanding:
            now = time.monotonic()
            for spec in [s for s, ready in retry_ready.items() if ready <= now]:
                retry_ready.pop(spec)
                queue.append(spec)
            while queue and len(outstanding) < workers:
                spec = queue.popleft()
                attempts[spec] += 1
                try:
                    future = pool.submit(_run_sweep_case, task_for(spec))
                except BrokenProcessPool:
                    attempts[spec] -= 1
                    queue.appendleft(spec)
                    respawn(_WORKER_DIED)
                    continue
                deadline = now + case_timeout if case_timeout is not None else None
                outstanding[future] = (spec, deadline)
            if not outstanding:
                if retry_ready:  # only backoff timers left: sleep them out
                    time.sleep(
                        max(0.0, min(retry_ready.values()) - time.monotonic())
                    )
                continue
            wake_points = [d for _, d in outstanding.values() if d is not None]
            wake_points.extend(retry_ready.values())
            timeout = None
            if wake_points:
                timeout = max(0.0, min(wake_points) - time.monotonic()) + 0.02
            done, _ = wait(
                set(outstanding), timeout=timeout, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                spec, _deadline = outstanding.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    _attempt_failed(spec, RuntimeError(_WORKER_DIED))
                except SweepInterrupted:
                    raise
                except ReproError as error:
                    fail(spec, error)
                except Exception as error:  # noqa: BLE001 - case isolation
                    _attempt_failed(spec, error)
                else:
                    record(*result)
            if broken:
                respawn(_WORKER_DIED)
                continue
            now = time.monotonic()
            expired = [
                future
                for future, (_spec, deadline) in outstanding.items()
                if deadline is not None and deadline <= now
            ]
            for future in expired:
                spec, _deadline = outstanding.pop(future)
                if not future.cancel():
                    abandoned = True  # already running: abandon the attempt
                _attempt_failed(spec, TimeoutError(_CASE_TIMEOUT))
    except SweepInterrupted:
        # Drop every queued case immediately — only the handful of
        # in-flight ones finish (and are discarded), so the interruption
        # really is mid-sweep even with a deep queue.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
