"""Table 5 — percentage of SA prefixes per provider."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table5Experiment(Experiment):
    """Prevalence of selectively announced prefixes across providers."""

    experiment_id = "table5"
    title = "Percentage of SA prefixes per provider"
    paper_reference = "Table 5, Section 5.1.2"
    requires = frozenset({Stage.TOPOLOGY, Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        reports = dataset.analysis.all_provider_reports()
        tier1 = set(dataset.tier1_ases)
        result.headers = [
            "provider",
            "tier-1",
            "customer prefixes",
            "SA prefixes",
            "% SA prefixes",
        ]
        ordered = sorted(
            reports.items(), key=lambda item: item[1].percent_sa, reverse=True
        )
        for provider, report in ordered:
            if report.customer_prefix_count == 0:
                continue
            result.rows.append(
                [
                    f"AS{provider}",
                    "yes" if provider in tier1 else "",
                    report.customer_prefix_count,
                    report.sa_prefix_count,
                    format_percent(report.percent_sa, 1),
                ]
            )
        result.notes.append(
            "Paper Table 5: 0%-48.6% SA prefixes across 16 ASes; the large Tier-1s "
            "(AS1, AS3549, AS7018) see 22%-32%."
        )
        return result
