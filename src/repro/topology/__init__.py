"""AS-level topology substrate: the annotated AS graph and its generators.

* :mod:`repro.topology.graph` — the annotated AS graph of paper Section 2.1
  (provider-to-customer and peer-to-peer edges), customer cones, and the
  modified depth-first search for customer paths used by the export-policy
  inference algorithm (paper Fig. 4, Phase 2).
* :mod:`repro.topology.hierarchy` — tier classification of ASes
  (Tier-1 clique detection and downward levels), used to pick the providers
  studied in Tables 5–10.
* :mod:`repro.topology.generator` — the synthetic hierarchical Internet the
  experiments run on, with ground-truth relationships, multihoming, and
  address allocation.
"""

from repro.topology.graph import AnnotatedASGraph, Relationship
from repro.topology.hierarchy import TierClassification, classify_tiers
from repro.topology.generator import GeneratorParameters, InternetGenerator, SyntheticInternet

__all__ = [
    "AnnotatedASGraph",
    "GeneratorParameters",
    "InternetGenerator",
    "Relationship",
    "SyntheticInternet",
    "TierClassification",
    "classify_tiers",
]
