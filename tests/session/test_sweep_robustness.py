"""Tests of the sweep's fault tolerance: retries, quarantine, degradation.

Every fault here is injected through a deterministic
:class:`~repro.faults.plan.FaultPlan`, so the failures (and therefore the
recoveries) replay identically on every run.
"""

import json

import pytest

from repro.faults.plan import FaultPlan, FaultRule
from repro.session.sweep import normalize_error, run_sweep

#: Two small, fast family cases; enough to exercise the pool paths.
CASES = ["collector-size@0", "collector-size@1"]

#: One experiment keeps each case attempt well under a second.
EXPERIMENTS = ["table2"]


def kill_plan(tmp_path, *, times=1, match="*") -> FaultPlan:
    return FaultPlan(
        seed=0,
        state_dir=str(tmp_path / "fault-state"),
        rules=(FaultRule("worker-kill", rate=1.0, times=times, match=match),),
    )


class TestNormalizeError:
    def test_path_placeholders(self, tmp_path):
        message = f"cannot write {tmp_path}/cache/topology/ab/abc.art"
        out = normalize_error(message, ("<cache-dir>", tmp_path / "cache"))
        assert out == "cannot write <cache-dir>/topology/ab/abc.art"

    def test_hex_addresses(self):
        out = normalize_error("<Study object at 0x7f3a2b1c9d80> died")
        assert out == "<Study object at 0x<addr>> died"

    def test_pid_spellings(self):
        assert normalize_error("worker pid 12345 exited") == "worker pid=<pid> exited"
        assert normalize_error("PID: 99 gone") == "PID=<pid> gone"
        assert (
            normalize_error("A child process 4242 was terminated")
            == "A child process <pid> was terminated"
        )

    def test_plain_messages_untouched(self):
        assert normalize_error("unknown experiment 'x'") == "unknown experiment 'x'"


class TestRetries:
    def test_transient_crash_is_retried_serially(self, tmp_path):
        # Each case is killed exactly once (in-process: FaultInjected), so
        # attempt 2 succeeds for both.
        report = run_sweep(
            CASES,
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            fault_plan=kill_plan(tmp_path),
            retries=2,
            retry_delay=0.01,
        )
        assert report.ok
        assert all(case.attempts == 2 for case in report.cases)
        assert report.count("completed") == 2

    def test_deterministic_errors_are_never_retried(self, tmp_path):
        report = run_sweep(
            CASES[:1],
            cache_dir=tmp_path / "cache",
            experiments=["no-such-experiment"],
            retries=5,
            retry_delay=0.01,
        )
        (case,) = report.cases
        assert case.status == "failed"
        assert case.attempts == 1  # ReproError: fail fast, no backoff spent

    def test_poison_case_is_quarantined(self, tmp_path):
        # An unbounded kill rule makes the case poison: after the retry
        # budget it lands in quarantine instead of aborting the sweep.
        report = run_sweep(
            CASES[:1] + ["multihoming@0"],
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            fault_plan=kill_plan(tmp_path, times=None, match="collector-size@0"),
            retries=1,
            retry_delay=0.01,
        )
        assert not report.ok
        by_spec = {case.spec: case for case in report.cases}
        assert by_spec["collector-size@0"].status == "quarantined"
        assert by_spec["collector-size@0"].attempts == 2
        assert by_spec["multihoming@0"].status == "completed"

    def test_quarantine_persists_across_resume(self, tmp_path):
        kwargs = dict(
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            retries=0,
            retry_delay=0.01,
        )
        first = run_sweep(
            CASES[:1],
            fault_plan=kill_plan(tmp_path, times=None),
            **kwargs,
        )
        assert first.count("quarantined") == 1
        # The resume (no fault plan at all) must not re-run the poison case.
        second = run_sweep(CASES[:1], **kwargs)
        (case,) = second.cases
        assert case.status == "quarantined"
        assert case.attempts == 0  # served from the manifest, not re-run
        # ... until resume is disabled, which clears the verdict.
        third = run_sweep(CASES[:1], resume=False, **kwargs)
        assert third.cases[0].status == "completed"

    def test_bad_retries_rejected(self, tmp_path):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="retries"):
            run_sweep(CASES, cache_dir=tmp_path / "cache", retries=-1)
        with pytest.raises(ExperimentError, match="timeout"):
            run_sweep(CASES, cache_dir=tmp_path / "cache", case_timeout=0)


class TestPoolRecovery:
    def test_worker_death_does_not_abort_the_sweep(self, tmp_path):
        # rate=1.0, times=1 per case: every worker os._exit()s on its first
        # attempt, the pool breaks, respawns, and the retries complete.
        report = run_sweep(
            CASES,
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            workers=2,
            fault_plan=kill_plan(tmp_path),
            retries=4,
            retry_delay=0.01,
        )
        assert report.ok
        assert all(case.attempts >= 2 for case in report.cases)

    def test_poison_case_quarantines_in_pool_mode(self, tmp_path):
        report = run_sweep(
            CASES,
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            workers=2,
            fault_plan=kill_plan(tmp_path, times=None, match="collector-size@0"),
            retries=1,
            retry_delay=0.01,
        )
        by_spec = {case.spec: case for case in report.cases}
        assert by_spec["collector-size@0"].status == "quarantined"
        assert by_spec["collector-size@1"].status in ("completed", "cached")

    def test_pool_and_serial_reports_are_byte_identical(self, tmp_path):
        # The chaos invariant in miniature: a sweep that needed crash
        # recovery produces the same timing-masked reports as a clean one.
        clean = run_sweep(
            CASES, cache_dir=tmp_path / "clean", experiments=EXPERIMENTS
        )
        chaotic = run_sweep(
            CASES,
            cache_dir=tmp_path / "chaos",
            experiments=EXPERIMENTS,
            workers=2,
            fault_plan=kill_plan(tmp_path),
            retries=4,
            retry_delay=0.01,
        )
        assert chaotic.ok
        for left, right in zip(clean.cases, chaotic.cases):
            assert open(left.report_path).read() == open(right.report_path).read()


class TestCaseTimeout:
    def test_slow_attempt_is_abandoned_and_retried(self, tmp_path):
        # Each case's topology operations sleep once (times=1 per identity),
        # so attempt 1 overruns the deadline; the retry runs on an idle
        # worker with the latency budget spent and completes.
        plan = FaultPlan(
            seed=0,
            state_dir=str(tmp_path / "fault-state"),
            rules=(
                FaultRule("latency", rate=1.0, match="topology/*", times=1, param=3.0),
            ),
        )
        report = run_sweep(
            CASES,
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            workers=4,
            fault_plan=plan,
            retries=2,
            retry_delay=0.01,
            case_timeout=1.2,
        )
        assert report.ok, report.render()
        assert all(case.attempts == 2 for case in report.cases)

    def test_always_slow_case_is_quarantined(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            state_dir=str(tmp_path / "fault-state"),
            rules=(FaultRule("latency", rate=1.0, times=None, param=0.4),),
        )
        report = run_sweep(
            CASES,
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            workers=2,
            fault_plan=plan,
            retries=1,
            retry_delay=0.01,
            case_timeout=0.6,
        )
        assert all(case.status == "quarantined" for case in report.cases)
        assert all(case.attempts == 2 for case in report.cases)
        assert all("timeout" in case.error for case in report.cases)


class TestDegradation:
    def test_persistent_write_errors_degrade_to_memory_only(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            state_dir=str(tmp_path / "fault-state"),
            rules=(FaultRule("store-write", rate=1.0, times=None, param="ENOSPC"),),
        )
        report = run_sweep(
            CASES,
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            fault_plan=plan,
            retries=0,
        )
        assert report.ok  # the computation succeeds without the disk tier
        for case in report.cases:
            store = case.cache_stats["store"]
            assert store["degraded"] is True
            assert store["write_failures"] >= 1

    def test_bounded_write_errors_do_not_degrade(self, tmp_path):
        # Only the topology write fails — one failure stays under the
        # DEGRADE_AFTER threshold and the next successful write resets the
        # streak, so the disk tier stays healthy.
        plan = FaultPlan(
            seed=0,
            state_dir=str(tmp_path / "fault-state"),
            rules=(
                FaultRule(
                    "store-write", rate=1.0, match="topology/*", times=None,
                    param="EIO",
                ),
            ),
        )
        report = run_sweep(
            CASES[:1],
            cache_dir=tmp_path / "cache",
            experiments=EXPERIMENTS,
            fault_plan=plan,
            retries=0,
        )
        assert report.ok
        (case,) = report.cases
        assert case.cache_stats["store"]["degraded"] is False
        assert case.cache_stats["store"]["write_failures"] >= 1


class TestManifestMismatch:
    def run_once(self, tmp_path, **overrides):
        kwargs = dict(
            cache_dir=tmp_path / "cache",
            sweep_dir=tmp_path / "sweep",
            experiments=EXPERIMENTS,
        )
        kwargs.update(overrides)
        return run_sweep(CASES[:1], **kwargs)

    def test_experiment_set_mismatch_is_surfaced(self, tmp_path, capsys):
        self.run_once(tmp_path)
        report = self.run_once(tmp_path, experiments=["table5"])
        assert report.manifest_note is not None
        assert "experiments" in report.manifest_note
        assert "manifest" in capsys.readouterr().err
        assert report.count("resumed") == 0  # recomputed, not resumed
        assert report.to_dict()["manifest_note"] == report.manifest_note

    def test_version_mismatch_is_surfaced(self, tmp_path):
        self.run_once(tmp_path)
        manifest = tmp_path / "sweep" / "manifest.json"
        data = json.loads(manifest.read_text())
        data["version"] = 999
        manifest.write_text(json.dumps(data))
        report = self.run_once(tmp_path)
        assert "version" in report.manifest_note

    def test_corrupt_manifest_is_surfaced(self, tmp_path):
        self.run_once(tmp_path)
        (tmp_path / "sweep" / "manifest.json").write_text("{truncated")
        report = self.run_once(tmp_path)
        assert "not valid JSON" in report.manifest_note
        assert report.ok

    def test_honoured_manifest_has_no_note(self, tmp_path):
        self.run_once(tmp_path)
        report = self.run_once(tmp_path)
        assert report.manifest_note is None
        assert report.count("resumed") == 1


class TestByteIdenticalFailures:
    def test_failed_sweep_json_is_machine_independent(self, tmp_path):
        # Two sweeps failing the same way in different directories must
        # serialize identically once timings are masked — the error
        # normalizer strips the paths that would otherwise differ.
        reports = []
        for name in ("one", "two"):
            report = run_sweep(
                CASES[:1],
                cache_dir=tmp_path / name / "cache",
                sweep_dir=tmp_path / name / "sweep",
                experiments=["no-such-experiment"],
            )
            payload = report.to_dict(include_timing=False)
            payload["cache_dir"] = payload["sweep_dir"] = "<masked>"
            reports.append(json.dumps(payload))
        assert reports[0] == reports[1]
