"""Tests of the chaos harness (``python -m repro chaos``)."""

import json

from repro.faults.chaos import ChaosCheck, ChaosReport, default_specs, run_chaos


class TestDefaultSpecs:
    def test_seed_derives_the_case_list(self):
        assert default_specs(5, count=3) == [
            "collector-size@5",
            "collector-size@6",
            "multihoming@5",
        ]

    def test_minimum_two_cases(self):
        assert len(default_specs(0, count=1)) == 2


class TestChaosReport:
    def test_ok_requires_every_check(self):
        report = ChaosReport(seed=1, specs=["a"])
        report.checks.append(ChaosCheck("one", True, "fine"))
        assert report.ok
        report.checks.append(ChaosCheck("two", False, "broken"))
        assert not report.ok

    def test_json_schema(self):
        report = ChaosReport(seed=1, specs=["a"])
        report.checks.append(ChaosCheck("one", True, "fine"))
        payload = json.loads(report.to_json())
        assert list(payload) == ["seed", "specs", "ok", "checks"]
        assert payload["checks"][0] == {"name": "one", "ok": True, "detail": "fine"}

    def test_render_names_the_verdict(self):
        report = ChaosReport(seed=7, specs=["a"])
        report.checks.append(ChaosCheck("one", False, "broken"))
        rendered = report.render()
        assert "FAIL" in rendered
        assert "INVARIANT VIOLATED" in rendered


class TestRunChaos:
    def test_all_invariants_hold_for_a_small_seed(self, tmp_path):
        # The full harness on its smallest footing: two cases, one
        # experiment, all five invariant checks.
        report = run_chaos(
            0,
            count=2,
            experiments=["table2"],
            workers=2,
            root=tmp_path / "scratch",
        )
        assert report.ok, report.render()
        names = [check.name for check in report.checks]
        assert names == [
            "baseline",
            "chaos-sweep",
            "kill-point",
            "resume",
            "degradation",
            "warm-reread",
        ]

    def test_scratch_root_is_kept_when_given(self, tmp_path):
        scratch = tmp_path / "scratch"
        run_chaos(1, count=2, experiments=["table2"], root=scratch)
        assert (scratch / "baseline").is_dir()
