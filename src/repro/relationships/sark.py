"""Rank-based relationship inference (baseline, in the spirit of reference [8]).

Subramanian, Agarwal, Rexford and Katz infer relationships by ranking ASes
from multiple vantage points and orienting each edge from the higher-ranked
(larger) AS to the lower-ranked one.  The paper uses that work for tier
classification; here the rank-based inference doubles as a simple baseline to
cross-check the Gao-style inference on the synthetic Internet.

The implementation ranks ASes by degree computed over the supplied paths and
classifies each observed edge:

* degrees within ``peer_ratio`` of each other → peer-to-peer,
* otherwise → provider-to-customer with the higher-degree AS as provider.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import InferenceError
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.relationships.gao import InferredRelationships
from repro.topology.graph import AnnotatedASGraph


class RankBasedInference:
    """Degree-rank relationship inference baseline.

    Args:
        peer_ratio: two ASes are called peers when the ratio of their degrees
            is at most this value.
    """

    def __init__(self, peer_ratio: float = 2.0) -> None:
        if peer_ratio < 1.0:
            raise InferenceError("peer_ratio must be >= 1")
        self.peer_ratio = peer_ratio

    def infer(self, paths: Iterable[ASPath | Iterable[ASN]]) -> InferredRelationships:
        """Infer relationships for every edge observed in the paths."""
        edges: set[frozenset[ASN]] = set()
        neighbors: dict[ASN, set[ASN]] = {}
        usable = False
        for path in paths:
            as_path = path if isinstance(path, ASPath) else ASPath(path)
            collapsed = as_path.deduplicate().asns
            if len(collapsed) < 2:
                continue
            usable = True
            for left, right in zip(collapsed, collapsed[1:]):
                edges.add(frozenset((left, right)))
                neighbors.setdefault(left, set()).add(right)
                neighbors.setdefault(right, set()).add(left)
        if not usable:
            raise InferenceError("no usable AS paths supplied")
        degrees = {asn: len(adjacent) for asn, adjacent in neighbors.items()}
        graph = AnnotatedASGraph()
        for asn in degrees:
            graph.add_as(asn)
        for edge in edges:
            left, right = sorted(edge)
            left_degree = max(degrees[left], 1)
            right_degree = max(degrees[right], 1)
            ratio = max(left_degree, right_degree) / min(left_degree, right_degree)
            if ratio <= self.peer_ratio:
                graph.add_peer_peer(left, right)
            elif left_degree > right_degree:
                graph.add_provider_customer(left, right)
            else:
                graph.add_provider_customer(right, left)
        return InferredRelationships(graph=graph, degrees=degrees)
