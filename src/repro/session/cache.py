"""Content-addressed cache for the staged Study pipeline.

Every stage of a :class:`~repro.session.study.Study` computes a *key* from
its own parameters plus the keys of the stages it depends on, then asks the
cache for the artifact.  Two studies that share a cache and agree on a prefix
of the pipeline therefore share the artifacts of that prefix — a sensitivity
sweep that varies only the policy parameters pays topology generation once.

The cache records per-stage hit/miss counters so tests (and the
``examples/policy_sweep.py`` demo) can assert the reuse actually happened.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable


def fingerprint(*parts: object) -> str:
    """A stable content hash for a tuple of (reprs of) parameter objects.

    The parts are frozen dataclasses, strings or prior stage keys; their
    ``repr`` is deterministic field-by-field, which makes the digest a
    content address of the whole upstream configuration.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:20]


@dataclass
class StageStats:
    """Hit/miss accounting for one stage of the pipeline."""

    hits: int = 0
    misses: int = 0

    @property
    def builds(self) -> int:
        """How many times the stage artifact was actually computed."""
        return self.misses


@dataclass
class StageCache:
    """A keyed artifact store shared by every :class:`Study` derived via ``with_``.

    Thread-safe with per-key build coordination: concurrent ``get_or_build``
    calls for the same key build the artifact once (waiters count as hits),
    while builds for *different* keys proceed in parallel — the lock guards
    only the bookkeeping, never a build.
    """

    _entries: dict[str, Any] = field(default_factory=dict)
    _stats: dict[str, StageStats] = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    _inflight: dict[str, threading.Event] = field(default_factory=dict, repr=False)

    def get_or_build(self, stage: str, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, building it on first use."""
        while True:
            with self._lock:
                stats = self._stats.setdefault(stage, StageStats())
                if key in self._entries:
                    stats.hits += 1
                    return self._entries[key]
                pending = self._inflight.get(key)
                if pending is None:
                    self._inflight[key] = threading.Event()
                    stats.misses += 1
                    break  # this thread owns the build
            # Another thread is building this key; wait and re-check (the
            # builder may have failed, in which case the loop retries).
            pending.wait()

        try:
            value = builder()
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self._entries[key] = value
            self._inflight.pop(key).set()
        return value

    def stats_for(self, stage: str) -> StageStats:
        """The hit/miss counters of one stage (zeros if never touched)."""
        with self._lock:
            return self._stats.setdefault(stage, StageStats())

    def clear(self) -> None:
        """Drop every completed artifact and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._stats.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide default cache.  Scenario studies and the legacy
#: ``default_dataset``/``small_dataset`` helpers share it, which replaces the
#: two ``lru_cache`` singletons the seed API used.
GLOBAL_CACHE = StageCache()
