"""Figure 6 — persistence of SA prefixes across snapshots."""

from __future__ import annotations

from repro.analysis.persistence import persistence_series
from repro.session.stages import StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import persistence_snapshots
from repro.experiments.registry import register


@register
class Figure6Experiment(Experiment):
    """Number of prefixes and SA prefixes per snapshot for one provider."""

    experiment_id = "fig6"
    title = "Persistence of SA prefixes (per-snapshot counts)"
    paper_reference = "Figure 6, Section 5.1.4"
    requires = frozenset()

    #: Snapshots for the "month" panel (the paper has 31 daily snapshots) and
    #: for the intra-day panel (12 two-hour snapshots).
    month_snapshots = 31
    day_snapshots = 12

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        result.headers = ["panel", "snapshot", "all prefixes", "SA prefixes"]
        for panel, count, seed in (
            ("fig6a (daily)", self.month_snapshots, 315),
            ("fig6b (intra-day)", self.day_snapshots, 316),
        ):
            provider, snapshots, graph = persistence_snapshots(count, seed)
            series = persistence_series(list(snapshots), provider, graph)
            for index, total, sa in series.as_rows():
                result.rows.append([panel, index + 1, total, sa])
        result.notes.append(
            "The persistence study runs on a dedicated smaller Internet re-simulated per "
            "snapshot; the studied provider is its largest Tier-1."
        )
        result.notes.append(
            "Paper Fig. 6: SA prefixes are consistently present for AS1 over March 2002 "
            "(both the daily and the 2-hourly views)."
        )
        return result
