"""Tests for the LOCAL_PREF / next-hop consistency analysis (Fig. 2)."""

from repro.bgp.rib import LocRib
from repro.bgp.route import Route
from repro.core.consistency import ConsistencyAnalyzer
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.collector import LookingGlass


def route(prefix, path, local_pref):
    return Route(
        prefix=Prefix.parse(prefix), as_path=ASPath.parse(path), local_pref=local_pref
    )


class TestAnalyzeTable:
    def test_fully_consistent_table(self):
        table = LocRib(owner=10)
        table.add_routes(
            [
                route("10.1.0.0/16", "1 9", 90),
                route("10.2.0.0/16", "1 8", 90),
                route("10.3.0.0/16", "2 7", 110),
            ]
        )
        result = ConsistencyAnalyzer().analyze_table(table)
        assert result.percent_consistent == 100.0
        assert result.neighbor_modes == {1: 90, 2: 110}
        assert result.total_routes == 3

    def test_prefix_based_overrides_lower_consistency(self):
        table = LocRib(owner=10)
        table.add_routes(
            [
                route("10.1.0.0/16", "1 9", 90),
                route("10.2.0.0/16", "1 8", 90),
                route("10.3.0.0/16", "1 7", 90),
                route("10.4.0.0/16", "1 6", 120),  # per-prefix override
            ]
        )
        result = ConsistencyAnalyzer().analyze_table(table)
        assert result.total_routes == 4
        assert result.consistent_routes == 3
        assert result.percent_consistent == 75.0

    def test_local_routes_ignored(self):
        from repro.bgp.route import originate

        table = LocRib(owner=10)
        table.add_route(originate(Prefix.parse("10.0.0.0/8"), origin_as=10))
        result = ConsistencyAnalyzer().analyze_table(table)
        assert result.total_routes == 0
        assert result.percent_consistent == 100.0

    def test_empty_table(self):
        result = ConsistencyAnalyzer().analyze_table(LocRib(owner=1))
        assert result.percent_consistent == 100.0


class TestDatasetConsistency:
    def test_fig2a_mostly_next_hop_based(self, dataset, glasses):
        analyzer = ConsistencyAnalyzer()
        results = analyzer.analyze_many(glasses)
        assert len(results) == len(glasses)
        for result in results:
            assert result.percent_consistent > 80.0
        average = sum(r.percent_consistent for r in results) / len(results)
        assert average > 90.0

    def test_fig2b_router_views(self, dataset, glasses):
        analyzer = ConsistencyAnalyzer()
        glass = glasses[0]
        results = analyzer.analyze_routers(glass, router_count=10,
                                           per_prefix_override_fraction=0.05, seed=3)
        assert len(results) == 10
        assert [r.router_id for r in results] == list(range(1, 11))
        for result in results:
            assert 70.0 < result.percent_consistent <= 100.0
        # Router views differ from each other (different per-router overrides).
        assert len({round(r.percent_consistent, 3) for r in results}) > 1
