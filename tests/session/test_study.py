"""Tests for the staged Study: lazy builds, cache accounting, with_() reuse."""

from dataclasses import replace

import pytest

from repro.data.dataset import DatasetParameters, StudyDataset, build_dataset
from repro.exceptions import ExperimentError, SimulationError
from repro.session import (
    IrrParameters,
    ObservationParameters,
    PropagationSettings,
    Stage,
    StageCache,
    StageView,
    Study,
    StudyConfig,
)
from repro.simulation.policies import PolicyParameters
from repro.topology.generator import GeneratorParameters

#: A deliberately tiny configuration so stage rebuilds stay cheap.
TINY = StudyConfig(
    topology=GeneratorParameters(
        seed=11, tier1_count=3, tier2_count=6, tier3_count=10, stub_count=40
    ),
    observation=ObservationParameters(
        looking_glass_count=4, tier1_looking_glass_count=2, collector_vantage_count=6
    ),
)


@pytest.fixture
def cache() -> StageCache:
    return StageCache()


@pytest.fixture
def study(cache) -> Study:
    return Study(TINY, cache=cache)


class TestStageAccounting:
    def test_dataset_builds_every_stage_once(self, study, cache):
        study.dataset()
        for stage in Stage:
            stats = cache.stats_for(stage.value)
            # The analysis stage is lazy: assembly does not compile the
            # measurement index until an analysis query needs it.
            expected = 0 if stage is Stage.ANALYSIS else 1
            assert stats.builds == expected, stage
        study.analysis()
        assert cache.stats_for(Stage.ANALYSIS.value).builds == 1

    def test_repeated_dataset_is_cached_and_identical(self, study, cache):
        first = study.dataset()
        second = study.dataset()
        assert first is second
        assert cache.stats_for("dataset").hits == 1
        for stage in Stage:
            if stage is Stage.ANALYSIS:
                continue
            assert cache.stats_for(stage.value).builds == 1

    def test_lazy_stage_access_builds_only_upstream(self, study, cache):
        study.policies()
        assert cache.stats_for("topology").builds == 1
        assert cache.stats_for("policies").builds == 1
        assert cache.stats_for("propagation").builds == 0
        assert cache.stats_for("observation").builds == 0
        assert cache.stats_for("irr").builds == 0


class TestWithUpstreamReuse:
    def test_policy_override_reuses_topology(self, study, cache):
        base = study.dataset()
        variant = study.with_(policy=replace(TINY.policy, seed=999))
        varied = variant.dataset()
        assert varied is not base
        assert varied.internet is base.internet
        topology = cache.stats_for("topology")
        assert topology.builds == 1
        assert topology.hits >= 1
        assert cache.stats_for("policies").builds == 2
        assert cache.stats_for("propagation").builds == 2

    def test_irr_override_reuses_everything_upstream(self, study, cache):
        base = study.dataset()
        varied = study.with_(irr=IrrParameters(registration_probability=0.2)).dataset()
        assert varied.result is base.result
        assert varied.collector is base.collector
        assert varied.irr is not base.irr
        assert cache.stats_for("propagation").builds == 1
        assert cache.stats_for("irr").builds == 2

    def test_observation_override_reuses_topology_only(self, study, cache):
        study.dataset()
        study.with_(
            observation=replace(TINY.observation, collector_vantage_count=4)
        ).dataset()
        assert cache.stats_for("topology").builds == 1
        assert cache.stats_for("policies").builds == 2

    def test_topology_override_rebuilds_everything(self, study, cache):
        study.dataset()
        study.with_(topology=replace(TINY.topology, seed=12)).dataset()
        for stage in Stage:
            if stage is Stage.ANALYSIS:
                continue  # lazy: only built when an analysis query runs
            assert cache.stats_for(stage.value).builds == 2, stage

    def test_with_shares_the_cache(self, study):
        variant = study.with_(policy=replace(TINY.policy, seed=5))
        assert variant.cache is study.cache

    def test_sweep_builds_topology_once(self, study, cache):
        for seed in range(5):
            study.with_(policy=replace(TINY.policy, seed=seed)).dataset()
        assert cache.stats_for("topology").builds == 1

    def test_seeded_changes_every_stage_key(self, study):
        derived = study.seeded(42)
        for stage in Stage:
            assert derived.stage_key(stage) != study.stage_key(stage)

    def test_same_config_same_keys(self, study, cache):
        twin = Study(TINY, cache=cache)
        for stage in Stage:
            assert twin.stage_key(stage) == study.stage_key(stage)


class TestDatasetCompatibilityView:
    def test_assembled_dataset_is_consistent(self, study):
        dataset = study.dataset()
        assert isinstance(dataset, StudyDataset)
        assert set(dataset.looking_glasses) == set(dataset.looking_glass_ases)
        assert set(dataset.as_info) == set(dataset.vantage_ases) | set(
            dataset.looking_glass_ases
        )
        assert dataset.parameters == TINY.dataset_parameters()

    def test_matches_legacy_build_dataset(self, study):
        legacy = build_dataset(TINY.dataset_parameters())
        staged = study.dataset()
        assert sorted(legacy.vantage_ases) == sorted(staged.vantage_ases)
        assert sorted(legacy.looking_glass_ases) == sorted(staged.looking_glass_ases)
        assert legacy.collector.prefixes() == staged.collector.prefixes()

    def test_invalid_config_raises_at_construction(self, cache):
        with pytest.raises(SimulationError):
            Study(
                replace(TINY, observation=ObservationParameters(collector_vantage_count=0)),
                cache=cache,
            )


class TestPropagationSettings:
    def test_default_is_fast_single_worker(self, study):
        assert study.propagation_settings == PropagationSettings(engine="fast", workers=1)

    def test_settings_survive_with_and_seeded(self, cache):
        settings = PropagationSettings(engine="legacy", workers=2)
        study = Study(TINY, cache=cache, propagation=settings)
        assert study.with_(irr=IrrParameters(seed=9)).propagation_settings == settings
        assert study.seeded(5).propagation_settings == settings

    def test_worker_count_does_not_change_the_stage_key(self, cache):
        one = Study(TINY, cache=cache, propagation=PropagationSettings(workers=1))
        four = Study(TINY, cache=cache, propagation=PropagationSettings(workers=4))
        assert one.stage_key(Stage.PROPAGATION) == four.stage_key(Stage.PROPAGATION)

    def test_engine_changes_only_the_propagation_key(self, cache):
        fast = Study(TINY, cache=cache)
        legacy = Study(TINY, cache=cache, propagation=PropagationSettings(engine="legacy"))
        assert fast.stage_key(Stage.PROPAGATION) != legacy.stage_key(Stage.PROPAGATION)
        assert fast.stage_key(Stage.POLICIES) == legacy.stage_key(Stage.POLICIES)
        assert fast.stage_key(Stage.IRR) == legacy.stage_key(Stage.IRR)

    def test_invalid_settings_are_rejected(self, cache):
        with pytest.raises(SimulationError):
            Study(TINY, cache=cache, propagation=PropagationSettings(engine="warp"))
        with pytest.raises(SimulationError):
            Study(TINY, cache=cache, propagation=PropagationSettings(workers=0))


class TestConfigConversion:
    def test_round_trip_through_dataset_parameters(self):
        config = TINY
        assert StudyConfig.from_dataset_parameters(config.dataset_parameters()) == config

    def test_parameters_are_hashable(self):
        assert hash(DatasetParameters()) == hash(DatasetParameters())
        assert hash(TINY) == hash(replace(TINY))
        assert hash(PolicyParameters()) == hash(PolicyParameters())


class TestStageView:
    def test_exposes_required_stages(self, study):
        view = study.view(frozenset({Stage.TOPOLOGY, Stage.PROPAGATION}))
        assert len(view.internet.graph) > 0
        assert view.result.observed_ases
        assert view.providers_under_study(2)

    def test_blocks_undeclared_stages(self, study):
        view = study.view(frozenset({Stage.TOPOLOGY}))
        with pytest.raises(ExperimentError, match="propagation"):
            view.result
        with pytest.raises(ExperimentError, match="observation"):
            view.looking_glass_of(view.tier1_ases[0])
        with pytest.raises(ExperimentError, match="irr"):
            view.irr
        with pytest.raises(ExperimentError, match="policies"):
            view.assignment

    def test_parameters_and_token_never_gated(self, study):
        view = study.view(frozenset())
        assert view.parameters == TINY.dataset_parameters()
        assert view.cache_token == study.view().cache_token

    def test_restricted_narrows(self, study):
        view = study.view()
        narrow = view.restricted(frozenset({Stage.IRR}))
        assert len(narrow.irr) >= 0
        with pytest.raises(ExperimentError):
            narrow.internet
