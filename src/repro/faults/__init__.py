"""Deterministic fault injection and the chaos harness (``repro chaos``).

The package has three parts:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultRule`, a
  seeded, serializable schedule of worker kills, write errors, artifact
  corruption and latency, with pure-hash firing decisions and marker-file
  firing bounds so the schedule is identical across processes and runs.
* :mod:`repro.faults.runtime` — process-local activation (explicit or via
  the ``REPRO_FAULT_PLAN`` environment variable, so plans cross
  process-pool boundaries) and the injection hooks compiled into
  :class:`repro.storage.store.DiskStore` and the sweep worker boundary.
* :mod:`repro.faults.chaos` — ``python -m repro chaos``: runs a sweep
  under a seeded plan and asserts the robustness invariants (the sweep
  terminates, resume completes the case list, timing-masked reports stay
  byte-identical to a fault-free baseline, write failures degrade the
  disk tier instead of failing the run).
"""

from repro.faults.plan import (
    CORRUPT_MODES,
    SITES,
    WRITE_ERRNOS,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)
from repro.faults.runtime import (
    KILL_EXIT_CODE,
    PLAN_ENV,
    activate,
    active_plan,
    corrupt_artifact,
    deactivate,
    fault_point,
    mark_worker,
    reset,
)

__all__ = [
    "CORRUPT_MODES",
    "KILL_EXIT_CODE",
    "PLAN_ENV",
    "SITES",
    "WRITE_ERRNOS",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "activate",
    "active_plan",
    "corrupt_artifact",
    "deactivate",
    "fault_point",
    "mark_worker",
    "reset",
]
