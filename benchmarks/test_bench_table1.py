"""Benchmark: reproduce Table 1 (dataset inventory)."""


def test_bench_table1(benchmark, run_experiment):
    result = run_experiment(benchmark, "table1")
    assert result.rows


def test_table1_inventory_includes_tier1_looking_glasses(benchmark, run_experiment, dataset):
    result = run_experiment(benchmark, "table1")
    looking_glass_rows = [row for row in result.rows if row[5] == "yes"]
    assert len(looking_glass_rows) == len(dataset.looking_glass_ases)
    tier1_lg = [row for row in looking_glass_rows if row[3] == 1]
    assert len(tier1_lg) >= dataset.parameters.tier1_looking_glass_count
