"""Figure 2 — consistency of LOCAL_PREF with next-hop ASes."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Figure2Experiment(Experiment):
    """Fig. 2(a): per-AS consistency; Fig. 2(b): per-router consistency."""

    experiment_id = "fig2"
    title = "Consistency of local preference with next-hop ASes"
    paper_reference = "Figure 2, Section 4.2"
    requires = frozenset({Stage.ANALYSIS})

    #: Number of synthetic backbone routers for the Fig. 2(b) panel (the
    #: paper uses 30 AT&T routers).
    router_count = 30

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        result.headers = ["view", "AS", "router", "% prefixes with next-hop-based LOCAL_PREF"]
        per_as = engine.consistency_by_as()
        for row in sorted(per_as, key=lambda r: r.asn):
            result.rows.append(
                ["fig2a", f"AS{row.asn}", "-", format_percent(row.percent_consistent, 1)]
            )
        # Fig. 2(b): the largest Looking Glass AS plays AT&T's role.
        biggest = engine.biggest_glass_asn()
        per_router = engine.consistency_by_router(router_count=self.router_count)
        for row in per_router:
            result.rows.append(
                ["fig2b", f"AS{biggest}", row.router_id,
                 format_percent(row.percent_consistent, 1)]
            )
        result.notes.append(
            "Paper Fig. 2: most ASes assign LOCAL_PREF per next-hop AS for the vast "
            "majority of prefixes (close to 100%), both across ASes and across the 30 "
            "AT&T backbone routers."
        )
        return result
