"""The on-disk artifact tier: content-addressed, atomic, versioned.

A :class:`DiskStore` lays stage artifacts out under one root directory::

    <root>/<stage>/<key[:2]>/<key>.art

Keys are the content addresses produced by
:func:`repro.session.cache.fingerprint`, so two processes that agree on a
pipeline prefix address the same files — that is what lets a sweep worker
reuse the topology another worker already compiled.

Each file is a packed ``(header, payload)`` pair.  The header records the
storage schema version, the stage, the stage codec version, the ``repro``
release and the machine byte order; :meth:`DiskStore.read` returns ``None``
(a miss) on any mismatch or corruption instead of handing stale bytes to a
codec.  Writes go through a temporary file in the same directory followed
by :func:`os.replace`, so concurrent writers are safe and a killed process
never leaves a half-written artifact behind.
"""

from __future__ import annotations

import os
import pathlib
import sys
import tempfile

from repro.storage.packing import pack, unpack
from repro.storage.versions import CODEC_VERSIONS, SCHEMA_VERSION

#: Leading marker of every artifact file header.
_MAGIC = "repro-artifact"

#: File suffix of stored artifacts.
_SUFFIX = ".art"


class DiskStore:
    """The content-addressed disk tier shared across processes.

    Args:
        root: directory the store lives under (created lazily on first
            write; reads from a missing root are plain misses).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        """Bind the store to its root directory (not created yet)."""
        self.root = pathlib.Path(root)

    # -- addressing ------------------------------------------------------------

    def path_for(self, stage: str, key: str) -> pathlib.Path:
        """The file path addressing one ``(stage, key)`` artifact."""
        return self.root / stage / key[:2] / f"{key}{_SUFFIX}"

    # -- read / write ----------------------------------------------------------

    def read(self, stage: str, key: str) -> bytes | None:
        """The stored payload of an artifact, or ``None``.

        Args:
            stage: pipeline stage name.
            key: the artifact's content address.

        Returns:
            The codec payload bytes, or ``None`` when the file is missing,
            unreadable, corrupt, or written under a different schema/codec
            version, ``repro`` release or byte order — every mismatch is a
            miss, never an error, so callers simply rebuild.
        """
        path = self.path_for(stage, key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            tree = unpack(data)
        except Exception:
            # Corruption can surface as more than StorageError (invalid
            # UTF-8 in a string node, a bad array typecode, a frombytes
            # length mismatch); the read contract is "corruption is a
            # miss", so any decode failure falls back to the builder.
            return None
        if not (isinstance(tree, tuple) and len(tree) == 2):
            return None
        header, payload = tree
        if header != self._header(stage) or not isinstance(payload, bytes):
            return None
        return payload

    def write(self, stage: str, key: str, payload: bytes) -> pathlib.Path:
        """Atomically persist one artifact payload.

        Args:
            stage: pipeline stage name.
            key: the artifact's content address.
            payload: the codec-encoded bytes.

        Returns:
            The final file path.

        Raises:
            OSError: if the filesystem rejects the write (callers treat the
                disk tier as best-effort and may swallow this).
        """
        path = self.path_for(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = pack((self._header(stage), payload))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def _header(self, stage: str) -> tuple:
        """The expected file header of one stage's artifacts."""
        from repro import __version__

        return (
            _MAGIC,
            SCHEMA_VERSION,
            stage,
            CODEC_VERSIONS.get(stage, 0),
            __version__,
            sys.byteorder,
        )

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-stage artifact counts and byte totals of the disk tier.

        Returns:
            Mapping ``stage -> {"artifacts": n, "bytes": total}`` for every
            stage directory present under the root, sorted by stage name.
        """
        result: dict[str, dict[str, int]] = {}
        if not self.root.is_dir():
            return result
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir() or stage_dir.name == "sweeps":
                continue
            count = 0
            total = 0
            for path in sorted(stage_dir.rglob(f"*{_SUFFIX}")):
                count += 1
                total += path.stat().st_size
            result[stage_dir.name] = {"artifacts": count, "bytes": total}
        return result

    def clear(self) -> int:
        """Delete every stored artifact file.

        Sweep manifests and case reports under ``<root>/sweeps`` are left
        alone — only the content-addressed tier is dropped.

        Returns:
            The number of artifact files removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir() or stage_dir.name == "sweeps":
                continue
            for path in sorted(stage_dir.rglob(f"*{_SUFFIX}")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def __repr__(self) -> str:
        """The store's root directory, for logs and error messages."""
        return f"DiskStore({str(self.root)!r})"
