#!/usr/bin/env python3
"""Traffic engineering with selective announcement — and its side effects.

The paper's motivation for studying export policies is inbound traffic
engineering: a multihomed customer can shift incoming traffic between its
providers by announcing prefixes to only a subset of them.  This example
shows both sides of that coin on a small Internet:

* before: the customer announces both prefixes to both providers — every
  Tier-1 reaches it over customer paths, traffic is spread;
* after: the customer moves one prefix to a single provider — inbound
  traffic for that prefix now enters over the chosen link only, *but* the
  other Tier-1 now reaches the prefix through a peer ("curving" route), i.e.
  the prefix became an SA prefix, exactly the effect the paper cautions
  operators about.

Run with::

    python examples/traffic_engineering.py
"""

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.net.prefix import Prefix
from repro.reporting.tables import ascii_table
from repro.simulation.policies import ASPolicy, PolicyAssignment
from repro.simulation.propagation import PropagationEngine
from repro.topology.generator import GeneratorParameters, SyntheticInternet
from repro.topology.graph import AnnotatedASGraph
from repro.topology.hierarchy import classify_tiers
from repro.net.allocator import AddressAllocator

TIER1_A, TIER1_B = 10, 20
PROVIDER_A, PROVIDER_B = 100, 200
CUSTOMER = 65001
PREFIX_WEB = Prefix.parse("10.50.0.0/20")
PREFIX_MAIL = Prefix.parse("10.50.16.0/20")


def build_internet() -> SyntheticInternet:
    """Two Tier-1 peers, two regional providers, one multihomed customer."""
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[
            (TIER1_A, PROVIDER_A),
            (TIER1_B, PROVIDER_B),
            (PROVIDER_A, CUSTOMER),
            (PROVIDER_B, CUSTOMER),
        ],
        peer_peer=[(TIER1_A, TIER1_B), (PROVIDER_A, PROVIDER_B)],
    )
    return SyntheticInternet(
        parameters=GeneratorParameters(),
        graph=graph,
        tiers=classify_tiers(graph),
        allocator=AddressAllocator(),
        originated={CUSTOMER: [PREFIX_WEB, PREFIX_MAIL]},
    )


def run(internet: SyntheticInternet, assignment: PolicyAssignment, label: str) -> None:
    engine = PropagationEngine(
        internet, assignment, observed_ases=[TIER1_A, TIER1_B, PROVIDER_A, PROVIDER_B]
    )
    result = engine.run()
    print(f"--- {label} ---")
    rows = []
    for observer in (TIER1_A, TIER1_B):
        table = result.table_of(observer)
        for prefix in (PREFIX_WEB, PREFIX_MAIL):
            best = table.best_route(prefix)
            rows.append(
                [
                    f"AS{observer}",
                    str(prefix),
                    str(best.as_path) if best else "(unreachable)",
                    str(best.neighbor_kind) if best else "-",
                ]
            )
    print(ascii_table(["observer", "prefix", "best AS path", "route type"], rows))

    analyzer = ExportPolicyAnalyzer(internet.graph)
    for observer in (TIER1_A, TIER1_B):
        report = analyzer.find_sa_prefixes(observer, result.table_of(observer))
        sa = ", ".join(str(p) for p in sorted(report.sa_prefix_set())) or "none"
        print(f"SA prefixes at AS{observer}: {sa}")
    print()


def main() -> None:
    internet = build_internet()

    # Before: announce everything everywhere.
    baseline = PolicyAssignment()
    for asn in internet.graph.ases():
        baseline.policies[asn] = ASPolicy(asn=asn)
    run(internet, baseline, "before traffic engineering (announce to both providers)")

    # After: move the web prefix onto provider B only to relieve the A link.
    engineered = PolicyAssignment()
    for asn in internet.graph.ases():
        engineered.policies[asn] = ASPolicy(asn=asn)
    customer_policy = engineered.policy_for(CUSTOMER)
    customer_policy.announce_to_providers[PREFIX_WEB] = frozenset({PROVIDER_B})
    engineered.selective_origins[CUSTOMER] = {PREFIX_WEB}
    run(
        internet,
        engineered,
        "after traffic engineering (web prefix announced to provider B only)",
    )

    print(
        "The web prefix's inbound traffic now enters via provider B only, but the\n"
        "Tier-1 above provider A has lost its customer route and reaches the prefix\n"
        "through its peer instead - the prefix has become an SA prefix (paper 5.1)."
    )


if __name__ == "__main__":
    main()
