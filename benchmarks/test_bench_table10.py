"""Benchmark: reproduce Table 10 (peers announcing their prefixes directly).

Paper shape: most peers (86%-100%) announce their own prefixes directly over
the peer link.
"""


def test_bench_table10(benchmark, run_experiment):
    result = run_experiment(benchmark, "table10")
    percentages = [float(row[2].rstrip("%")) for row in result.rows]
    assert percentages
    assert min(percentages) > 50.0
    assert sum(percentages) / len(percentages) > 75.0
