"""The differential fuzz harness: sample scenarios, run both engines, judge.

``run_fuzz`` draws ``count`` scenarios from each requested family (case
seeds are ``seed, seed + 1, ...`` so any failing case is reproducible with
``--seed <case seed> --count 1``), builds each sample through an isolated
:class:`~repro.session.study.Study`, runs the legacy propagation engine
next to the fast one, assembles the dataset and its analysis engine, and
then applies every oracle in :data:`repro.fuzz.oracles.ORACLES` —
collecting *all* violations per case instead of stopping at the first.

Cases are independent, so ``workers > 1`` fans them out over a process
pool with a deterministic, task-ordered merge (the report is identical for
any worker count).

CLI::

    python -m repro fuzz --family peering-density --count 25 --seed 7
    python -m repro fuzz --count 5 --workers 4 --json   # every family
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError
from repro.fuzz.oracles import ORACLES, FuzzContext, OracleViolation
from repro.session.cache import StageCache, fingerprint
from repro.session.scenarios import family_names, get_family
from repro.session.study import Study
from repro.simulation.propagation import PropagationEngine


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation observed in one fuzz case.

    Attributes:
        oracle: the violated oracle's name.
        message: the violation description.
    """

    oracle: str
    message: str


@dataclass
class FuzzCaseResult:
    """The outcome of all oracles on one sampled scenario.

    Attributes:
        family: the scenario family sampled.
        seed: the case seed (``family.sample(seed)`` rebuilds the scenario).
        config_fingerprint: content hash of the sampled
            :class:`~repro.session.stages.StudyConfig` (two processes must
            agree on it — the seed-determinism regression test asserts so).
        oracles_passed: names of the oracles that held.
        failures: every oracle violation observed.
        seconds: wall-clock cost of the case.
    """

    family: str
    seed: int
    config_fingerprint: str
    oracles_passed: list[str] = field(default_factory=list)
    failures: list[OracleFailure] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """``True`` when every oracle held."""
        return not self.failures

    @property
    def reproduction(self) -> str:
        """The CLI invocation that replays exactly this case."""
        return (
            f"python -m repro fuzz --family {self.family} "
            f"--seed {self.seed} --count 1"
        )

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict with a stable key order."""
        return {
            "family": self.family,
            "seed": self.seed,
            "config_fingerprint": self.config_fingerprint,
            "ok": self.ok,
            "oracles_passed": list(self.oracles_passed),
            "failures": [
                {"oracle": failure.oracle, "message": failure.message}
                for failure in self.failures
            ],
            "seconds": round(self.seconds, 4) if include_timing else None,
        }


@dataclass
class FuzzReport:
    """The structured result of one ``run_fuzz`` call.

    Attributes:
        families: the families fuzzed, in request order.
        count: cases per family.
        base_seed: first case seed (case ``i`` uses ``base_seed + i``).
        workers: process-pool width the run used.
        cases: per-case results, in ``(family, case index)`` order.
        total_seconds: wall-clock cost of the whole run.
    """

    families: list[str]
    count: int
    base_seed: int
    workers: int = 1
    cases: list[FuzzCaseResult] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """``True`` when every case passed every oracle."""
        return all(case.ok for case in self.cases)

    @property
    def failure_count(self) -> int:
        """Total oracle violations across all cases."""
        return sum(len(case.failures) for case in self.cases)

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict; ``include_timing=False`` masks all timings."""
        return {
            "families": list(self.families),
            "count": self.count,
            "base_seed": self.base_seed,
            "ok": self.ok,
            "cases": [case.to_dict(include_timing=include_timing) for case in self.cases],
            "workers": self.workers if include_timing else None,
            "total_seconds": round(self.total_seconds, 4) if include_timing else None,
        }

    def to_json(self, *, include_timing: bool = True, indent: int | None = 2) -> str:
        """Deterministic JSON.

        Byte-identical across worker counts when ``include_timing=False``.
        """
        return json.dumps(self.to_dict(include_timing=include_timing), indent=indent)

    def render(self) -> str:
        """A human-readable per-case summary with reproduction hints."""
        lines = [
            f"fuzz: {len(self.families)} families x {self.count} cases "
            f"(seeds {self.base_seed}..{self.base_seed + self.count - 1}, "
            f"workers={self.workers})"
        ]
        for case in self.cases:
            status = "ok  " if case.ok else "FAIL"
            lines.append(
                f"{status} {case.family:20s} seed={case.seed:<6d} "
                f"{len(case.oracles_passed)}/{len(ORACLES)} oracles  "
                f"{case.seconds:.2f}s"
            )
            for failure in case.failures:
                lines.append(f"     oracle={failure.oracle}: {failure.message}")
            if not case.ok:
                lines.append(f"     reproduce: {case.reproduction}")
        failing = sum(1 for case in self.cases if not case.ok)
        lines.append(
            f"summary: {len(self.cases)} cases, {len(self.cases) - failing} ok, "
            f"{failing} failing ({self.failure_count} oracle violations), "
            f"{self.total_seconds:.1f}s"
        )
        return "\n".join(lines)


def build_context(
    family_name: str, seed: int, cache_dir: str | None = None
) -> FuzzContext:
    """Build everything the oracles need for one ``(family, seed)`` case.

    Samples the family, builds the study through a fresh
    :class:`~repro.session.cache.StageCache`, runs *both* propagation
    engines over the same topology and policy plan, and assembles the
    dataset (over the fast result) with its analysis engine.

    With ``cache_dir`` set, the study's cache is backed by the shared disk
    tier: stage artifacts another worker (or an earlier run) persisted are
    decoded instead of rebuilt, and the decoded fast-path artifacts are
    still checked differentially against a freshly executed legacy engine —
    so a warm fuzz run exercises the storage codecs as well as the engines.

    Args:
        family_name: a registered scenario family.
        seed: the case seed.
        cache_dir: optional shared artifact-store directory.

    Returns:
        The assembled :class:`~repro.fuzz.oracles.FuzzContext`.
    """
    family = get_family(family_name)
    config = family.sample(seed)
    if cache_dir is None:
        cache = StageCache()
    else:
        from repro.storage.store import DiskStore

        cache = StageCache(disk=DiskStore(cache_dir))
    study = Study(config, cache=cache)
    internet = study.topology()
    plan = study.policies()
    fast_result = study.propagation()
    legacy_result = PropagationEngine(
        internet, plan.assignment, observed_ases=plan.observed_ases
    ).run()
    dataset = study.dataset()
    return FuzzContext(
        family=family_name,
        seed=seed,
        config=config,
        dataset=dataset,
        engine=dataset.analysis_engine(),
        legacy_result=legacy_result,
        fast_result=fast_result,
    )


def run_case(
    family_name: str, seed: int, cache_dir: str | None = None
) -> FuzzCaseResult:
    """Run every oracle against one sampled scenario.

    Oracle violations are collected per oracle — one failing invariant
    never hides another; unexpected (non-:class:`OracleViolation`)
    exceptions propagate, since they indicate harness bugs rather than
    engine divergences.

    Args:
        family_name: a registered scenario family.
        seed: the case seed.
        cache_dir: optional shared artifact-store directory.

    Returns:
        The case's :class:`FuzzCaseResult`.
    """
    started = time.perf_counter()
    context = build_context(family_name, seed, cache_dir)
    result = FuzzCaseResult(
        family=family_name,
        seed=seed,
        config_fingerprint=fingerprint(context.config),
    )
    for oracle_name, oracle in ORACLES:
        try:
            oracle(context)
        except OracleViolation as violation:
            result.failures.append(
                OracleFailure(oracle=oracle_name, message=str(violation))
            )
        else:
            result.oracles_passed.append(oracle_name)
    result.seconds = time.perf_counter() - started
    return result


def _run_case_spec(spec: tuple[str, int, str | None]) -> FuzzCaseResult:
    """Process-pool entry point (top level, so it pickles by reference)."""
    family_name, seed, cache_dir = spec
    return run_case(family_name, seed, cache_dir)


def run_fuzz(
    families: list[str] | None = None,
    count: int = 5,
    seed: int = 7,
    workers: int = 1,
    cache_dir: str | None = None,
) -> FuzzReport:
    """Fuzz ``count`` sampled scenarios per family and judge every oracle.

    Args:
        families: scenario families to sample (default: every registered
            one, sorted by name).  Unknown names raise immediately.
        count: cases per family; case ``i`` uses seed ``seed + i``.
        seed: the base seed.
        workers: process-pool width; ``1`` runs in-process.  The merged
            report is identical for any worker count.
        cache_dir: optional shared artifact-store directory; workers read
            and populate it concurrently.

    Returns:
        The :class:`FuzzReport` over all cases.

    Raises:
        ExperimentError: on unknown families or invalid ``count``/``workers``.
    """
    selected = list(families) if families else family_names()
    for name in selected:
        get_family(name)  # validate before spending any propagation time
    if count < 1:
        raise ExperimentError(f"fuzz count must be >= 1, got {count}")
    if workers < 1:
        raise ExperimentError(f"fuzz workers must be >= 1, got {workers}")

    specs = [
        (family_name, seed + index, cache_dir)
        for family_name in selected
        for index in range(count)
    ]
    started = time.perf_counter()
    if workers == 1 or len(specs) <= 1:
        cases = [_run_case_spec(spec) for spec in specs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            cases = list(pool.map(_run_case_spec, specs))
    return FuzzReport(
        families=selected,
        count=count,
        base_seed=seed,
        workers=workers,
        cases=cases,
        total_seconds=time.perf_counter() - started,
    )
