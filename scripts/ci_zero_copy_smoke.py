"""Zero-copy scaling smoke check (``python -m scripts.ci_zero_copy_smoke``).

On a multi-core machine the zero-copy process pool must not lose to the
in-process engine: workers publish the compiled topology into shared
memory once and attach by name, so the per-task cost is a descriptor and
a shard range.  This script times the fast engine at ``workers=1`` and
``workers=2`` over one precompiled topology (best of three runs each),
cross-checks both results against the serial run, verifies no
shared-memory segment is leaked, and fails if the two-worker wall time
exceeds the one-worker wall time.

On a machine with fewer than two CPUs the assertion is physically
meaningless — two workers time-slice one core — so the script prints a
visible skip notice and exits 0.  The committed ``BENCH_propagation.json``
documents that regime; this check exists for CI runners with real cores.

Pure standard library; exits non-zero with a message on the first failure.
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.fuzz.oracles import check_propagation_equivalence  # noqa: E402
from repro.session.cache import StageCache  # noqa: E402
from repro.session.scenarios import get_scenario  # noqa: E402
from repro.simulation.fastpath import FastPropagationEngine  # noqa: E402

#: Large enough that sharding has work to win on; small enough for a smoke.
SCENARIO = "standard"
REPEATS = 3


def _shm_names() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux runner
        return set()


def _best_seconds(internet, plan, compiled, workers: int, serial) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        engine = FastPropagationEngine(
            internet,
            plan.assignment,
            observed_ases=plan.observed_ases,
            workers=workers,
            compiled=compiled,
        )
        started = time.perf_counter()
        result = engine.run()
        best = min(best, time.perf_counter() - started)
        check_propagation_equivalence(serial, result)
    return best


def main() -> int:
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        print(
            "SKIP: zero-copy scaling smoke needs >= 2 CPUs "
            f"(this machine reports cpu_count={cpu_count}); "
            "workers=2 would time-slice one core and the assertion "
            "workers=2 <= workers=1 is meaningless here."
        )
        return 0

    study = get_scenario(SCENARIO).study(cache=StageCache())
    internet = study.topology()
    plan = study.policies()
    serial_engine = FastPropagationEngine(
        internet, plan.assignment, observed_ases=plan.observed_ases
    )
    serial = serial_engine.run()
    compiled = serial_engine.compiled

    before = _shm_names()
    one = _best_seconds(internet, plan, compiled, 1, serial)
    two = _best_seconds(internet, plan, compiled, 2, serial)
    leaked = _shm_names() - before
    if leaked:
        raise SystemExit(f"leaked shared-memory segments: {sorted(leaked)}")

    print(
        f"[{SCENARIO}] cpu_count={cpu_count} "
        f"workers=1: {one:.2f}s  workers=2: {two:.2f}s "
        f"(x{one / two:.2f})"
    )
    if two > one:
        raise SystemExit(
            f"zero-copy pool lost on a {cpu_count}-core machine: "
            f"workers=2 took {two:.2f}s vs workers=1 {one:.2f}s"
        )
    print("OK: workers=2 wall time <= workers=1, results identical, no leaks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
