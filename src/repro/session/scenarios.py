"""Named scenario presets — one registration away from a new workload.

A scenario is a named, documented :class:`~repro.session.stages.StudyConfig`
factory.  The built-ins cover the configurations the repo has needed so far:

* ``standard`` — the seed repo's default dataset (what the paper's tables run on).
* ``small`` — the quick configuration used by the test suite and examples.
* ``dense-peering`` — much denser lateral peering, stressing peer-route
  selection and the Table 10 peer-export analyses.
* ``sparse-multihoming`` — few multihomed stubs, suppressing the paper's
  main cause of SA prefixes (a lower-bound scenario for Tables 5-9).
* ``large`` — the full-size synthetic Internet of
  :class:`~repro.topology.generator.GeneratorParameters`' defaults with an
  Oregon-scale collector (56 peers).

Register new ones with :func:`register_scenario`; the CLI
(``python -m repro scenarios``) lists whatever is registered.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.exceptions import ExperimentError
from repro.session.cache import StageCache
from repro.session.stages import ObservationParameters, PropagationSettings, StudyConfig
from repro.session.study import Study
from repro.simulation.policies import PolicyParameters
from repro.topology.generator import GeneratorParameters


@dataclass(frozen=True)
class Scenario:
    """A named study configuration.

    Attributes:
        name: registry identifier (``"standard"``, ``"small"``, ...).
        description: one-line summary shown by ``python -m repro scenarios``.
        config_factory: builds the scenario's :class:`StudyConfig`.
    """

    name: str
    description: str
    config_factory: Callable[[], StudyConfig]

    def config(self) -> StudyConfig:
        """The scenario's study configuration."""
        return self.config_factory()

    def study(
        self,
        *,
        cache: StageCache | None = None,
        propagation: PropagationSettings | None = None,
    ) -> Study:
        """A :class:`Study` of this scenario (sharing the global cache by default).

        ``propagation`` selects the propagation engine and worker count (the
        fast engine with one worker when omitted).
        """
        return Study(self.config(), cache=cache, propagation=propagation)


_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str, config_factory: Callable[[], StudyConfig]
) -> Scenario:
    """Register a named scenario; raises on duplicates."""
    if name in _SCENARIOS:
        raise ExperimentError(f"duplicate scenario name: {name!r}")
    scenario = Scenario(name=name, description=description, config_factory=config_factory)
    _SCENARIOS[name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises:
        ExperimentError: for unknown names.
    """
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        raise ExperimentError(
            f"unknown scenario {name!r}; known: {sorted(_SCENARIOS)}"
        )
    return scenario


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, ordered by name."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]


def scenario_names() -> list[str]:
    """The registered scenario names, sorted."""
    return sorted(_SCENARIOS)


# -- built-in presets --------------------------------------------------------------

register_scenario(
    "standard",
    "the default study dataset the paper's tables are reproduced on (~330 ASes)",
    StudyConfig,
)

register_scenario(
    "small",
    "quick ~150-AS configuration used by the test suite and examples",
    lambda: StudyConfig(
        topology=GeneratorParameters(
            seed=7, tier1_count=5, tier2_count=10, tier3_count=20, stub_count=110
        ),
        observation=ObservationParameters(
            looking_glass_count=8,
            tier1_looking_glass_count=3,
            collector_vantage_count=12,
        ),
    ),
)

register_scenario(
    "dense-peering",
    "standard topology with much denser lateral peering (stresses peer routes)",
    lambda: StudyConfig(
        topology=replace(
            StudyConfig().topology,
            tier2_peering_probability=0.8,
            tier3_peering_probability=0.3,
            stub_peering_probability=0.05,
        ),
    ),
)

register_scenario(
    "sparse-multihoming",
    "standard topology with rare multihoming (suppresses the main SA-prefix cause)",
    lambda: StudyConfig(
        topology=replace(
            StudyConfig().topology,
            stub_multihoming_probability=0.10,
            max_stub_providers=2,
        ),
        policy=PolicyParameters(selective_announcement_probability=0.25),
    ),
)

register_scenario(
    "large",
    "full-size ~1100-AS Internet with an Oregon-scale collector (56 peers)",
    lambda: StudyConfig(
        topology=GeneratorParameters(),
        observation=ObservationParameters(collector_vantage_count=56),
    ),
)
