"""Benchmark: reproduce Table 9 (splitting / aggregating vs selective announcing).

Paper shape: prefix splitting and aggregation explain only a small fraction
of SA prefixes; selective announcing is the dominant cause.
"""


def test_bench_table9(benchmark, run_experiment):
    result = run_experiment(benchmark, "table9")
    total_sa = sum(row[1] for row in result.rows)
    total_split = sum(row[2] for row in result.rows)
    total_agg = sum(row[3] for row in result.rows)
    total_selective = sum(row[4] for row in result.rows)
    assert total_sa > 0
    assert total_selective > total_split + total_agg
    assert total_selective / total_sa > 0.5
