"""Table 4 — AS relationships verified through BGP communities."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table4Experiment(Experiment):
    """Fraction of each tagging AS's neighbor relationships verified."""

    experiment_id = "table4"
    title = "AS relationships verified via community semantics"
    paper_reference = "Table 4, Section 4.3 and Appendix"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        # The paper verifies *inferred* relationships; the engine defaults to
        # the (shared, cached) Gao inference over the collector's AS paths.
        rows = dataset.analysis.verify_relationships()
        result.headers = ["AS", "# neighbors", "verifiable", "% relationships verified"]
        for row in sorted(rows, key=lambda r: r.asn):
            result.rows.append(
                [
                    f"AS{row.asn}",
                    row.neighbor_count,
                    row.verifiable_neighbors,
                    format_percent(row.percent_verified, 2),
                ]
            )
        result.notes.append(
            "Paper Table 4: 94.1%-99.55% of the 9 ASes' neighbor relationships verified."
        )
        return result
