"""Deterministic binary packing of codec primitive trees.

Stage codecs (:mod:`repro.storage.codecs`) lower every pipeline artifact
into a *primitive tree* — a nesting of ``None``, booleans, integers,
floats, strings, bytes, tuples, lists and :class:`array.array` columns —
and this module turns such a tree into bytes and back.

The encoding is deterministic **by construction**: containers are written
in the order the codec built them, integers and lengths use a canonical
varint form, and no hash-ordered container (``dict``, ``set``) is
representable at all — codecs must lower those to explicitly ordered
pairs/tuples first.  That is what makes the golden byte-identity guarantee
(two fresh interpreters under different ``PYTHONHASHSEED`` values produce
identical artifact files) checkable rather than accidental.

The format is a compact tag-length-value stream:

====  =========  ============================================
tag   type       payload
====  =========  ============================================
0x00  ``None``   —
0x01  ``True``   —
0x02  ``False``  —
0x03  ``int``    zigzag varint
0x04  ``float``  8 bytes, IEEE-754 big-endian
0x05  ``str``    varint byte length + UTF-8 bytes
0x06  ``bytes``  varint length + raw bytes
0x07  ``tuple``  varint item count + packed items
0x08  ``list``   varint item count + packed items
0x09  ``array``  typecode byte + varint byte length + machine
                 bytes (:meth:`array.array.tobytes`)
====  =========  ============================================

Array columns use the machine byte order for speed (they are the bulk of
an artifact); :class:`repro.storage.store.DiskStore` records the byte
order in the file header and refuses cross-endian reads.
"""

from __future__ import annotations

import struct
from array import array

from repro.exceptions import StorageError

_FLOAT = struct.Struct(">d")

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_ARRAY = 0x09


def _write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_varint(out: bytearray, value: int) -> None:
    """Append a signed (zigzag) varint to ``out``.

    Non-negative values map to even numbers, negatives to odd ones, so
    small magnitudes stay small regardless of sign.
    """
    _write_uvarint(out, (value << 1) ^ (-1 if value < 0 else 0))


def _pack_into(out: bytearray, obj: object) -> None:
    """Append the packed form of one primitive-tree node to ``out``."""
    if obj is None:
        out.append(_TAG_NONE)
    elif obj is True:
        out.append(_TAG_TRUE)
    elif obj is False:
        out.append(_TAG_FALSE)
    elif type(obj) is int:
        out.append(_TAG_INT)
        _write_varint(out, obj)
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT.pack(obj))
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        out.append(_TAG_STR)
        _write_uvarint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _write_uvarint(out, len(obj))
        out.extend(obj)
    elif isinstance(obj, tuple):
        out.append(_TAG_TUPLE)
        _write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif isinstance(obj, list):
        out.append(_TAG_LIST)
        _write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif isinstance(obj, array):
        raw = obj.tobytes()
        out.append(_TAG_ARRAY)
        out.append(ord(obj.typecode))
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(obj, int):  # int subclasses (ASN, IntEnum): store the value
        out.append(_TAG_INT)
        _write_varint(out, int(obj))
    else:
        raise StorageError(
            f"cannot pack {type(obj).__name__!r}: codecs must lower artifacts "
            "to None/bool/int/float/str/bytes/tuple/list/array trees"
        )


def pack(obj: object) -> bytes:
    """Serialize a primitive tree into deterministic bytes.

    Args:
        obj: a nesting of ``None``, ``bool``, ``int`` (any subclass),
            ``float``, ``str``, ``bytes``, ``tuple``, ``list`` and
            :class:`array.array` values.

    Returns:
        The packed byte string.  Equal trees always pack to equal bytes,
        in any interpreter, regardless of ``PYTHONHASHSEED``.

    Raises:
        StorageError: if the tree contains an unsupported type (notably
            ``dict``/``set``, which have no canonical order).
    """
    out = bytearray()
    _pack_into(out, obj)
    return bytes(out)


class _Reader:
    """Cursor over a packed byte string."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        """Start a cursor at the beginning of ``data``."""
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        """Consume and return the next ``count`` bytes."""
        end = self.pos + count
        if end > len(self.data):
            raise StorageError("truncated packed data")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def uvarint(self) -> int:
        """Consume one unsigned varint."""
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.data):
                raise StorageError("truncated varint in packed data")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def varint(self) -> int:
        """Consume one signed (zigzag) varint."""
        raw = self.uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)


def _unpack_from(reader: _Reader) -> object:
    """Read one primitive-tree node from ``reader``."""
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return reader.varint()
    if tag == _TAG_FLOAT:
        return _FLOAT.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.uvarint()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.uvarint())
    if tag == _TAG_TUPLE:
        return tuple(_unpack_from(reader) for _ in range(reader.uvarint()))
    if tag == _TAG_LIST:
        return [_unpack_from(reader) for _ in range(reader.uvarint())]
    if tag == _TAG_ARRAY:
        typecode = chr(reader.take(1)[0])
        column = array(typecode)
        column.frombytes(reader.take(reader.uvarint()))
        return column
    raise StorageError(f"unknown packing tag 0x{tag:02x}")


def unpack(data: bytes) -> object:
    """Deserialize bytes produced by :func:`pack` back into a primitive tree.

    Args:
        data: the packed byte string.

    Returns:
        The primitive tree (tuples stay tuples, lists stay lists, arrays
        keep their typecode).

    Raises:
        StorageError: on truncated input, unknown tags or trailing bytes.
    """
    reader = _Reader(data)
    tree = _unpack_from(reader)
    if reader.pos != len(data):
        raise StorageError(
            f"{len(data) - reader.pos} trailing byte(s) after packed tree"
        )
    return tree
