"""Unit tests for repro.bgp.route."""

from repro.bgp.attributes import CommunitySet, DEFAULT_LOCAL_PREF
from repro.bgp.route import NeighborKind, Route, RouteSource, originate
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def make_route(path="7018 1239 6280", prefix="10.1.0.0/16", **kwargs):
    return Route(prefix=Prefix.parse(prefix), as_path=ASPath.parse(path), **kwargs)


class TestRouteBasics:
    def test_learned_from_defaults_to_next_hop(self):
        route = make_route("7018 1239 6280")
        assert route.learned_from == 7018
        assert route.next_hop_as == 7018
        assert route.origin_as == 6280

    def test_explicit_learned_from_wins(self):
        route = make_route("7018 1239 6280", learned_from=99)
        assert route.next_hop_as == 99

    def test_neighbor_kind_classification(self):
        customer = make_route(neighbor_kind=NeighborKind.CUSTOMER)
        peer = make_route(neighbor_kind=NeighborKind.PEER)
        provider = make_route(neighbor_kind=NeighborKind.PROVIDER)
        assert customer.is_customer_route and not customer.is_peer_route
        assert peer.is_peer_route and not peer.is_provider_route
        assert provider.is_provider_route and not provider.is_customer_route

    def test_default_attributes(self):
        route = make_route()
        assert route.local_pref == DEFAULT_LOCAL_PREF
        assert route.med == 0
        assert not route.communities
        assert route.source is RouteSource.EBGP

    def test_str_mentions_prefix_and_kind(self):
        text = str(make_route(neighbor_kind=NeighborKind.PEER))
        assert "10.1.0.0/16" in text and "peer" in text


class TestDerivation:
    def test_with_local_pref_is_pure(self):
        route = make_route()
        updated = route.with_local_pref(90)
        assert updated.local_pref == 90
        assert route.local_pref == DEFAULT_LOCAL_PREF

    def test_with_neighbor_kind(self):
        updated = make_route().with_neighbor_kind(NeighborKind.CUSTOMER)
        assert updated.is_customer_route

    def test_with_communities(self):
        updated = make_route().with_communities(CommunitySet(["12859:1000"]))
        assert updated.communities.has("12859:1000")

    def test_announced_by_prepends_and_resets_local_pref(self):
        route = make_route("1239 6280", local_pref=300)
        announced = route.announced_by(7018)
        assert announced.as_path == ASPath.parse("7018 1239 6280")
        assert announced.local_pref == DEFAULT_LOCAL_PREF
        assert announced.learned_from == 7018
        assert announced.neighbor_kind is NeighborKind.UNKNOWN

    def test_announced_by_with_prepending(self):
        announced = make_route("6280").announced_by(852, prepend=3)
        assert announced.as_path.asns == (852, 852, 852, 6280)

    def test_announced_by_preserves_communities_and_med(self):
        route = make_route(communities=CommunitySet(["1:1"]), med=77)
        announced = route.announced_by(7018)
        assert announced.communities.has("1:1")
        assert announced.med == 77


class TestOriginate:
    def test_originate_is_local_single_as_path(self):
        route = originate(Prefix.parse("10.2.0.0/16"), origin_as=6280)
        assert route.is_local
        assert route.origin_as == 6280
        assert route.as_path.asns == (6280,)
        assert route.learned_from == 6280

    def test_originate_with_communities(self):
        route = originate(
            Prefix.parse("10.2.0.0/16"), origin_as=6280,
            communities=CommunitySet(["6280:1"]),
        )
        assert route.communities.has("6280:1")
