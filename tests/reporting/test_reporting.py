"""Tests for ASCII table and figure rendering."""

import pytest

from repro.reporting.figures import ascii_bar_chart, ascii_series, series_to_csv
from repro.reporting.tables import ascii_table, format_percent


class TestAsciiTable:
    def test_basic_rendering(self):
        text = ascii_table(
            ["AS", "% typical"],
            [["AS7018", "99.99%"], ["AS1", "99.994%"]],
            title="Table 2",
        )
        assert "Table 2" in text
        assert "| AS7018" in text
        assert text.count("+-") >= 3

    def test_numeric_right_alignment(self):
        text = ascii_table(["name", "count"], [["a", 5], ["bbbb", 12345]])
        lines = [line for line in text.splitlines() if line.startswith("| ")]
        data_lines = lines[1:]
        assert data_lines[0].endswith("    5 |")
        assert data_lines[1].endswith("12345 |")

    def test_handles_short_rows(self):
        text = ascii_table(["a", "b", "c"], [["x"]])
        assert "| x" in text

    def test_empty_rows(self):
        text = ascii_table(["a"], [])
        assert "| a |" in text

    def test_format_percent(self):
        assert format_percent(97.6) == "97.6%"
        assert format_percent(100.0, 2) == "100.00%"


class TestFigures:
    def test_series_to_csv(self):
        csv = series_to_csv(["day", "all", "sa"], [[1, 10, 2], [2, 11, 3]])
        assert csv.splitlines() == ["day,all,sa", "1,10,2", "2,11,3"]

    def test_bar_chart_scales_to_peak(self):
        chart = ascii_bar_chart(["a", "b"], [50.0, 100.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_empty(self):
        assert "(empty)" in ascii_bar_chart([], [], title="t")

    def test_bar_chart_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_ascii_series(self):
        text = ascii_series(
            [1, 2],
            {"all": [10.0, 12.0], "sa": [2.0, 3.0]},
            width=10,
            title="fig6",
        )
        assert "fig6" in text
        assert text.count("all") == 2
        assert text.count("sa") == 2
