"""Tests for the binary MRT-style dump format."""

import io

import pytest

from repro.bgp.attributes import Community, CommunitySet, Origin
from repro.bgp.rib import LocRib
from repro.bgp.route import Route, RouteSource, originate
from repro.data.mrt import MrtReader, MrtWriter, dump_tables, load_tables
from repro.exceptions import DataFormatError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def sample_table(owner=7018):
    table = LocRib(owner=owner)
    table.add_route(
        Route(
            prefix=Prefix.parse("12.10.0.0/19"),
            as_path=ASPath.parse("1239 701 6280"),
            local_pref=90,
            med=5,
            origin=Origin.INCOMPLETE,
            communities=CommunitySet(["7018:1000", "7018:5000"]),
        )
    )
    table.add_route(
        Route(
            prefix=Prefix.parse("12.10.0.0/19"),
            as_path=ASPath.parse("852 6280"),
            local_pref=110,
        )
    )
    table.add_route(originate(Prefix.parse("12.0.0.0/12"), origin_as=owner))
    return table


class TestRoundtrip:
    def test_tables_roundtrip(self):
        table = sample_table()
        data = dump_tables([table])
        restored = load_tables(data)
        assert set(restored) == {7018}
        restored_table = restored[7018]
        assert len(restored_table) == len(table)
        prefix = Prefix.parse("12.10.0.0/19")
        assert {str(r.as_path) for r in restored_table.all_routes(prefix)} == {
            "1239 701 6280",
            "852 6280",
        }

    def test_attributes_preserved(self):
        data = dump_tables([sample_table()])
        restored = load_tables(data)[7018]
        prefix = Prefix.parse("12.10.0.0/19")
        routes = {r.next_hop_as: r for r in restored.all_routes(prefix)}
        assert routes[1239].local_pref == 90
        assert routes[1239].med == 5
        assert routes[1239].origin is Origin.INCOMPLETE
        assert routes[1239].communities.has("7018:1000")
        assert routes[852].local_pref == 110

    def test_best_route_flag_recomputed(self):
        data = dump_tables([sample_table()])
        restored = load_tables(data)[7018]
        best = restored.best_route(Prefix.parse("12.10.0.0/19"))
        assert best.next_hop_as == 852

    def test_local_route_preserved(self):
        data = dump_tables([sample_table()])
        restored = load_tables(data)[7018]
        local = restored.best_route(Prefix.parse("12.0.0.0/12"))
        assert local.source is RouteSource.LOCAL
        assert local.origin_as == 7018

    def test_multiple_tables(self):
        data = dump_tables([sample_table(7018), sample_table(1239)])
        restored = load_tables(data)
        assert set(restored) == {7018, 1239}

    def test_record_iteration_reports_best_flag(self):
        buffer = io.BytesIO(dump_tables([sample_table()]))
        records = list(MrtReader(buffer).records())
        assert len(records) == 3
        assert sum(1 for r in records if r.is_best) == 2  # one best per prefix

    def test_empty_table_writes_nothing(self):
        buffer = io.BytesIO()
        count = MrtWriter(buffer).write_table(LocRib(owner=1))
        assert count == 0
        assert buffer.getvalue() == b""


class TestErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(DataFormatError):
            list(MrtReader(io.BytesIO(b"XXXX\x00\x01")).records())

    def test_truncated_header_rejected(self):
        with pytest.raises(DataFormatError):
            list(MrtReader(io.BytesIO(b"RP")).records())

    def test_bad_version_rejected(self):
        with pytest.raises(DataFormatError):
            list(MrtReader(io.BytesIO(b"RPRM\x00\x09")).records())

    def test_truncated_record_rejected(self):
        data = dump_tables([sample_table()])
        with pytest.raises(DataFormatError):
            list(MrtReader(io.BytesIO(data[:-3])).records())

    def test_truncated_length_rejected(self):
        data = dump_tables([sample_table()])
        # Cut in the middle of a record-length field: header(6) + 2 bytes.
        with pytest.raises(DataFormatError):
            list(MrtReader(io.BytesIO(data[:8])).records())
