"""Benchmark: propagation engines on the small scenario.

The interesting numbers for the standard and large scenarios live in
``BENCH_propagation.json`` (regenerate with ``python benchmarks/run_bench.py``);
this pytest-benchmark pairing keeps a cheap engine-vs-engine comparison in
the default benchmark run and cross-checks that the timed fast run stays
message-for-message identical to the legacy engine.
"""

from __future__ import annotations

import pytest

from repro.session.cache import StageCache
from repro.session.scenarios import get_scenario
from repro.simulation.fastpath import FastPropagationEngine
from repro.simulation.propagation import PropagationEngine


@pytest.fixture(scope="module")
def small_inputs():
    study = get_scenario("small").study(cache=StageCache())
    return study.topology(), study.policies()


def test_bench_propagation_legacy_small(benchmark, small_inputs):
    internet, plan = small_inputs
    result = benchmark.pedantic(
        lambda: PropagationEngine(
            internet, plan.assignment, observed_ases=plan.observed_ases
        ).run(),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.message_count > 0


def test_bench_propagation_fast_small(benchmark, small_inputs):
    internet, plan = small_inputs
    legacy = PropagationEngine(
        internet, plan.assignment, observed_ases=plan.observed_ases
    ).run()
    result = benchmark.pedantic(
        lambda: FastPropagationEngine(
            internet, plan.assignment, observed_ases=plan.observed_ases
        ).run(),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.message_count == legacy.message_count
    assert result.truncated_prefixes == legacy.truncated_prefixes
