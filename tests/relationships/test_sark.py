"""Unit tests for the rank-based inference baseline."""

import pytest

from repro.exceptions import InferenceError
from repro.net.aspath import ASPath
from repro.relationships.sark import RankBasedInference
from repro.topology.graph import Relationship


def paths():
    return [
        ASPath.parse("1 10 100"),
        ASPath.parse("1 10 200"),
        ASPath.parse("1 2 20 300"),
        ASPath.parse("2 20 300"),
        ASPath.parse("2 1 10 100"),
    ]


class TestRankBasedInference:
    def test_higher_degree_becomes_provider(self):
        result = RankBasedInference(peer_ratio=1.4).infer(paths())
        graph = result.graph
        assert graph.relationship(10, 100) is Relationship.CUSTOMER
        assert graph.relationship(20, 300) is Relationship.CUSTOMER

    def test_comparable_degrees_become_peers(self):
        result = RankBasedInference(peer_ratio=1.4).infer(paths())
        assert result.graph.relationship(1, 2) is Relationship.PEER

    def test_degrees_reported(self):
        result = RankBasedInference().infer(paths())
        assert result.degrees[1] == 2  # neighbors: AS10 and AS2

    def test_empty_input_rejected(self):
        with pytest.raises(InferenceError):
            RankBasedInference().infer([])

    def test_invalid_ratio_rejected(self):
        with pytest.raises(InferenceError):
            RankBasedInference(peer_ratio=0.9)

    def test_accepts_plain_sequences(self):
        result = RankBasedInference().infer([[7, 8], [7, 9], [7, 8, 10]])
        assert result.graph.relationship(7, 8) is not None
