"""The interned flat-graph propagation engine.

:class:`FastPropagationEngine` replays the legacy engine's message-passing
algorithm — same FIFO schedule, same export rules, same budget accounting —
over the arrays of a :class:`~repro.simulation.fastpath.compile.CompiledTopology`.
Four things make it fast:

* **No per-message object churn.**  AS paths and community sets are interned
  (a path/set is a small integer id; prepends and tag-adds are memo-table
  hits after first use), candidates are plain tuples, and the per-edge
  policy/relationship work of the legacy engine is a couple of array reads
  off a precompiled receiver-side edge slot.
* **Grouped fan-out.**  The legacy engine enqueues one message object per
  (sender, receiver) pair.  Exports fan the same wire route out to many
  neighbors, so the queue holds one *group* per export — the pre-sorted
  target tuple plus the interned route — and receivers are expanded at pop
  time.  The flattened schedule (and the message budget accounting) is
  identical; the allocation count is not.
* **Incremental best-route selection.**  The legacy engine re-scans every
  candidate on every message.  Within one AS's candidate set every route
  comes from a distinct next-hop AS, so MED never compares, IGP metric and
  router id are constant, and the decision process collapses to the total
  order ``(-LOCAL_PREF, path length, insertion sequence)`` — the insertion
  sequence reproduces the legacy tie-break "the incumbent wins a complete
  tie" exactly.  A new announcement therefore challenges the incumbent in
  O(1); a full re-scan happens only when the incumbent itself is displaced
  or withdrawn.
* **Zero-copy parallel fan-out.**  Prefixes propagate independently, so the
  originated-prefix list is cut into contiguous shards over a
  ``ProcessPoolExecutor``.  Nothing bulky crosses the process boundary in
  either direction: the parent publishes the compiled topology once into a
  shared-memory segment (:mod:`repro.simulation.fastpath.shm`) and ships
  each worker only ``(descriptor, shard range)``; workers attach read-only
  array views by segment name and return observed tables in lowered form
  (flat integer columns plus their interned path/community tables), which
  the parent materializes into :class:`Route` objects while merging shards
  in task order — keeping the result bit-identical to a serial run for any
  worker count.

The ORIGIN attribute is constant (``originate`` always emits ``Origin.IGP``
and no policy knob rewrites it), so it is excluded from the decision key and
the re-announcement signature; the legacy engine relies on the same
invariant.
"""

from __future__ import annotations

from array import array
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter

from repro.bgp.attributes import DEFAULT_LOCAL_PREF, Community, CommunitySet, Origin
from repro.bgp.decision import DecisionProcess
from repro.bgp.rib import LocRib
from repro.bgp.route import NeighborKind, Route, RouteSource
from repro.exceptions import SimulationError
from repro.faults.runtime import fault_point, mark_worker
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.fastpath.compile import (
    KIND_LOCAL,
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_SIBLING,
    CompiledTopology,
    SeedPlan,
    compile_seed_plan,
    compile_topology,
)
from repro.simulation.fastpath.shm import (
    AttachCache,
    SharedTopologyView,
    attach,
    publish,
)
from repro.simulation.policies import PolicyAssignment
from repro.simulation.propagation import PrefixRun, PrefixState, SimulationResult
from repro.topology.generator import SyntheticInternet

_KIND_TO_NEIGHBOR_KIND = {
    REL_CUSTOMER: NeighborKind.CUSTOMER,
    REL_PEER: NeighborKind.PEER,
    REL_PROVIDER: NeighborKind.PROVIDER,
    REL_SIBLING: NeighborKind.SIBLING,
}

_EMPTY_SET: frozenset[int] = frozenset()

_SET_FIELD = object.__setattr__

# Candidate tuple layout: (local_pref, path_len, path_id, comm_id, kind, seq).
_LP, _PLEN, _PATH, _COMM, _KIND, _SEQ = range(6)


class _State:
    """Per-AS state for the prefix currently being propagated (fast form).

    States live in a per-core slot array and are recycled between prefixes:
    a state whose ``gen`` stamp is stale is logically absent and is reset
    lazily on first touch, so steady-state propagation allocates nothing.
    """

    __slots__ = (
        "cand", "best", "best_sender", "bk0", "bk1", "bk2",
        "announced", "counter", "gen",
    )

    def __init__(self, gen: int) -> None:
        self.cand: dict[int, tuple] = {}
        self.best: tuple | None = None
        self.best_sender: int | None = None
        # The incumbent's decision key (-local_pref, path_len, seq), held as
        # three scalars so the per-message challenge needs no tuple.  Only
        # meaningful while ``best_sender`` is not None.
        self.bk0 = 0
        self.bk1 = 0
        self.bk2 = 0
        # Neighbors currently holding this AS's announcement; a frozenset
        # shared with the export-target memo (exports replace it wholesale).
        self.announced: frozenset[int] = _EMPTY_SET
        self.counter = 0
        self.gen = gen

    def reset(self, gen: int) -> None:
        self.cand.clear()
        self.best = None
        self.best_sender = None
        self.announced = _EMPTY_SET
        self.counter = 0
        self.gen = gen


class _Core:
    """Single-process propagation over a compiled topology.

    Holds the per-process intern tables (paths, community sets, export
    target memos) and the recycled state slots; one core serves every prefix
    of a run, so interned structure is shared across prefixes.
    """

    def __init__(
        self, topology: CompiledTopology | SharedTopologyView, message_budget: int
    ) -> None:
        self.topology = topology
        self.message_budget = message_budget
        # Recycled per-AS state slots, validated by generation stamp.
        self._states: list[_State | None] = [None] * topology.as_count
        self._generation = 0
        # Path interning: id -> tuple of dense AS ids (receiver-first).
        self._paths: list[tuple[int, ...]] = []
        self._path_index: dict[tuple[int, ...], int] = {}
        self._plen: list[int] = []
        self._prepend_memo: dict[tuple[int, int], int] = {}
        # Community-set interning, seeded from the compiled table.  The run
        # representation of a set is a frozenset of (asn, value) int pairs —
        # value-deduplicated so id equality is set equality — and the real
        # CommunitySet is materialized lazily, only for observed routes.
        self._comm_members: list[frozenset[tuple[int, int]]] = []
        self._comm_lookup: dict[frozenset[tuple[int, int]], int] = {}
        self._comm_cs: list[CommunitySet | None] = []
        for communities in topology.comm_table:
            pairs = frozenset((c.asn, c.value) for c in communities.communities)
            self._comm_lookup[pairs] = len(self._comm_members)
            self._comm_members.append(pairs)
            self._comm_cs.append(communities)
        self._tag_pairs = [(t.asn, t.value) for t in topology.tag_communities]
        # Per-tag memo of comm_id -> comm_id-with-tag (int keys, no tuples).
        self._comm_tag_memos: list[dict[int, int]] = [
            {} for _ in topology.tag_communities
        ]
        # Export target memo: (as, class, excluded next hop) -> (pairs, set).
        self._target_memo: dict[tuple[int, bool, int], tuple[tuple, frozenset]] = {}
        # Materialization memo: path id -> ASPath.
        self._aspath_memo: dict[int, ASPath] = {}
        # Aliases for the export path (one attribute hop instead of two).
        self._exp_local = topology.exp_local
        self._exp_local_set = topology.exp_local_set
        self._exp_customer = topology.exp_customer
        self._exp_down = topology.exp_down
        self._honor_scoped = topology.honor_scoped
        self._scoped_marker = topology.scoped_marker

    # -- interning ----------------------------------------------------------

    def _intern_path(self, path: tuple[int, ...]) -> int:
        path_id = self._path_index.get(path)
        if path_id is None:
            path_id = len(self._paths)
            self._paths.append(path)
            self._plen.append(len(path))
            self._path_index[path] = path_id
        return path_id

    def _prepend(self, path_id: int, asn_idx: int) -> int:
        key = (path_id, asn_idx)
        new_id = self._prepend_memo.get(key)
        if new_id is None:
            new_id = self._intern_path((asn_idx,) + self._paths[path_id])
            self._prepend_memo[key] = new_id
        return new_id

    def intern_communities(self, communities: CommunitySet) -> int:
        """Intern a :class:`CommunitySet`, extending the run table."""
        pairs = frozenset((c.asn, c.value) for c in communities.communities)
        comm_id = self._comm_lookup.get(pairs)
        if comm_id is None:
            comm_id = len(self._comm_members)
            self._comm_lookup[pairs] = comm_id
            self._comm_members.append(pairs)
            self._comm_cs.append(communities)
        return comm_id

    def _comm_add(self, comm_id: int, tag_id: int) -> int:
        members = self._comm_members[comm_id] | {self._tag_pairs[tag_id]}
        new_id = self._comm_lookup.get(members)
        if new_id is None:
            new_id = len(self._comm_members)
            self._comm_lookup[members] = new_id
            self._comm_members.append(members)
            self._comm_cs.append(None)
        self._comm_tag_memos[tag_id][comm_id] = new_id
        return new_id

    def _communities_of(self, comm_id: int) -> CommunitySet:
        communities = self._comm_cs[comm_id]
        if communities is None:
            communities = CommunitySet(
                Community(asn, value) for asn, value in self._comm_members[comm_id]
            )
            self._comm_cs[comm_id] = communities
        return communities

    # -- propagation --------------------------------------------------------

    def run_task(self, origin_idx: int, prefix: Prefix, seed: SeedPlan) -> tuple[int, bool]:
        """Propagate one prefix to a fixed point (or the message budget).

        Returns ``(messages processed, truncated?)``; the resulting per-AS
        states stay in the core's slot array (current generation) until the
        next ``run_task`` call — read them via :meth:`observed_routes` or
        :meth:`states`.  The hot loop is deliberately inlined: per-message
        work is a handful of array and dict operations over interned ids.
        """
        topology = self.topology
        edge_lp = topology.edge_lp
        edge_tag = topology.edge_tag
        edge_rel = topology.edge_rel
        # Per-prefix overrides are sparse; hoist the emptiness check so the
        # common case pays nothing per message.
        overrides_get = topology.edge_overrides.get if topology.edge_overrides else None
        paths = self._paths
        plens = self._plen
        comm_add = self._comm_add
        tag_memos = self._comm_tag_memos
        rescan = self._rescan
        export = self._export
        states = self._states
        gen = self._generation + 1
        self._generation = gen

        origin_state = states[origin_idx]
        if origin_state is None:
            origin_state = states[origin_idx] = _State(gen)
        else:
            origin_state.reset(gen)
        local_path = self._intern_path((origin_idx,))
        local_cand = (DEFAULT_LOCAL_PREF, 1, local_path, 0, KIND_LOCAL, 0)
        origin_state.cand[origin_idx] = local_cand
        origin_state.counter = 1
        origin_state.best = local_cand
        origin_state.best_sender = origin_idx
        origin_state.bk0 = -DEFAULT_LOCAL_PREF
        origin_state.bk1 = 1
        origin_state.bk2 = 0
        origin_state.announced = seed.announced

        # Queue of fan-out groups: (sender, targets, path_id, comm_id).
        # path_id None marks a withdrawal group (targets are plain ids);
        # announcement groups carry (target, receiver-side slot) pairs.
        queue: deque[tuple] = deque()
        for pairs, comm_id in seed.groups:
            queue.append((origin_idx, pairs, local_path, comm_id))

        budget = self.message_budget
        processed = 0
        truncated = False
        popleft = queue.popleft
        append = queue.append
        while queue:
            sender, targets, path_id, group_comm = popleft()

            # Budget accounting is hoisted to the group level: only when this
            # group could cross the budget does the loop count per message
            # (`overflow`), preserving the legacy engine's exact truncation
            # point and total count.
            overflow = processed + len(targets) > budget
            if not overflow:
                processed += len(targets)

            if path_id is None:
                # -- withdrawal group -----------------------------------------
                for receiver in targets:
                    if overflow:
                        processed += 1
                        if processed > budget:
                            truncated = True
                            break
                    state = states[receiver]
                    if state is None or state.gen != gen:
                        continue
                    cand_map = state.cand
                    if sender not in cand_map:
                        continue
                    previous = state.best
                    del cand_map[sender]
                    if sender == state.best_sender:
                        rescan(state)
                    best = state.best
                    if previous is best or (
                        previous is not None
                        and best is not None
                        and previous[2] == best[2]
                        and previous[3] == best[3]
                        and previous[0] == best[0]
                    ):
                        continue
                    export(receiver, state, append)
                if truncated:
                    break
                continue

            # -- announcement group -------------------------------------------
            path = paths[path_id]
            plen = plens[path_id]
            for receiver, slot in targets:
                if overflow:
                    processed += 1
                    if processed > budget:
                        truncated = True
                        break
                if receiver in path:
                    continue
                lp = edge_lp[slot]
                if overrides_get is not None:
                    overrides = overrides_get(slot)
                    if overrides is not None:
                        lp = overrides.get(prefix, lp)
                tag_id = edge_tag[slot]
                rel = edge_rel[slot]
                if tag_id >= 0:
                    comm_id = tag_memos[tag_id].get(group_comm)
                    if comm_id is None:
                        comm_id = comm_add(group_comm, tag_id)
                else:
                    comm_id = group_comm
                state = states[receiver]
                if state is None:
                    state = states[receiver] = _State(gen)
                elif state.gen != gen:
                    state.cand.clear()
                    state.best = None
                    state.best_sender = None
                    state.announced = _EMPTY_SET
                    state.counter = 0
                    state.gen = gen
                cand_map = state.cand
                old = cand_map.get(sender)
                if old is None:
                    seq = state.counter
                    state.counter = seq + 1
                else:
                    seq = old[5]
                cand = (lp, plen, path_id, comm_id, rel, seq)
                cand_map[sender] = cand
                previous = state.best
                nlp = -lp
                best_sender = state.best_sender
                if best_sender is None:
                    state.best = cand
                    state.best_sender = sender
                    state.bk0 = nlp
                    state.bk1 = plen
                    state.bk2 = seq
                elif sender == best_sender:
                    # The incumbent's own update: seq is unchanged, so the
                    # (-lp, plen, seq) <= comparison reduces to two scalars.
                    if nlp < state.bk0 or (nlp == state.bk0 and plen <= state.bk1):
                        state.best = cand
                        state.bk0 = nlp
                        state.bk1 = plen
                    else:
                        rescan(state)
                elif nlp < state.bk0 or (
                    nlp == state.bk0
                    and (
                        plen < state.bk1
                        or (plen == state.bk1 and seq < state.bk2)
                    )
                ):
                    state.best = cand
                    state.best_sender = sender
                    state.bk0 = nlp
                    state.bk1 = plen
                    state.bk2 = seq
                best = state.best
                if previous is best or (
                    previous is not None
                    and previous[2] == best[2]
                    and previous[3] == best[3]
                    and previous[0] == best[0]
                ):
                    continue
                export(receiver, state, append)
            if truncated:
                break

        return processed, truncated

    def _rescan(self, state: _State) -> None:
        """Full re-selection after the incumbent was displaced or withdrawn."""
        best = None
        best_sender = None
        bk0 = bk1 = bk2 = 0
        for sender, cand in state.cand.items():
            nlp = -cand[0]
            plen = cand[1]
            seq = cand[5]
            if (
                best is None
                or nlp < bk0
                or (nlp == bk0 and (plen < bk1 or (plen == bk1 and seq < bk2)))
            ):
                best, best_sender = cand, sender
                bk0, bk1, bk2 = nlp, plen, seq
        state.best = best
        state.best_sender = best_sender
        state.bk0 = bk0
        state.bk1 = bk1
        state.bk2 = bk2

    def _export(self, asn_idx: int, state: _State, append) -> None:
        """Mirror of the legacy ``_export``: withdrawals first, then the
        (pre-sorted) announcements, then the announced-to bookkeeping.

        ``append`` is the queue's bound ``append`` — the caller sits in the
        hot loop and passes it pre-bound.
        """
        best = state.best
        if best is None:
            targets: tuple = ()
            target_set: frozenset[int] = _EMPTY_SET
        else:
            kind = best[4]
            if kind == KIND_LOCAL:
                targets = self._exp_local[asn_idx]
                target_set = self._exp_local_set[asn_idx]
            elif (
                self._honor_scoped[asn_idx]
                and self._scoped_marker[asn_idx] in self._comm_members[best[3]]
            ):
                # The customer asked this AS not to propagate the route further.
                targets = ()
                target_set = _EMPTY_SET
            else:
                from_customer = kind == REL_CUSTOMER or kind == REL_SIBLING
                next_hop = state.best_sender
                memo_key = (asn_idx, from_customer, next_hop)
                cached = self._target_memo.get(memo_key)
                if cached is None:
                    template = (
                        self._exp_customer[asn_idx]
                        if from_customer
                        else self._exp_down[asn_idx]
                    )
                    targets = tuple(p for p in template if p[0] != next_hop)
                    target_set = frozenset(p[0] for p in targets)
                    self._target_memo[memo_key] = (targets, target_set)
                else:
                    targets, target_set = cached
        announced = state.announced
        if announced is not target_set:
            withdrawn = announced - target_set
            if withdrawn:
                append((asn_idx, tuple(sorted(withdrawn)), None, 0))
        if targets:
            if best[4] == KIND_LOCAL:
                exported_path = best[2]
            else:
                exported_path = self._prepend(best[2], asn_idx)
            append((asn_idx, targets, exported_path, best[3]))
        state.announced = target_set

    # -- materialization ----------------------------------------------------

    def states(self) -> dict[int, _State]:
        """The per-AS states of the most recent ``run_task``, by dense id."""
        gen = self._generation
        return {
            idx: state
            for idx, state in enumerate(self._states)
            if state is not None and state.gen == gen
        }

    def _aspath_of(self, path_id: int) -> ASPath:
        as_path = self._aspath_memo.get(path_id)
        if as_path is None:
            asns = self.topology.asns
            as_path = ASPath._from_validated(
                tuple(asns[i] for i in self._paths[path_id])
            )
            self._aspath_memo[path_id] = as_path
        return as_path

    def route_of(self, prefix: Prefix, sender_idx: int, cand: tuple) -> Route:
        """Materialize one candidate tuple back into a :class:`Route`.

        Builds the frozen dataclass directly via ``object.__setattr__`` —
        every field is assigned explicitly (``__post_init__`` would be a
        no-op because ``learned_from`` is set), and observed tables hold
        tens of thousands of these.
        """
        lp, _, path_id, comm_id, kind, _ = cand
        route = Route.__new__(Route)
        set_field = _SET_FIELD
        set_field(route, "prefix", prefix)
        set_field(route, "as_path", self._aspath_of(path_id))
        set_field(route, "origin", Origin.IGP)
        set_field(route, "med", 0)
        set_field(route, "communities", self._communities_of(comm_id))
        set_field(route, "learned_from", self.topology.asns[sender_idx])
        set_field(route, "igp_metric", 0)
        set_field(route, "router_id", 0)
        if kind == KIND_LOCAL:
            set_field(route, "local_pref", DEFAULT_LOCAL_PREF)
            set_field(route, "source", RouteSource.LOCAL)
            set_field(route, "neighbor_kind", NeighborKind.UNKNOWN)
        else:
            set_field(route, "local_pref", lp)
            set_field(route, "source", RouteSource.EBGP)
            set_field(route, "neighbor_kind", _KIND_TO_NEIGHBOR_KIND[kind])
        return route

    def observed_routes(self, prefix: Prefix) -> dict[ASN, tuple[list[Route], Route | None]]:
        """Candidate routes (insertion order) + best route per observed AS.

        Reads the most recent ``run_task``'s states.  The best route is the
        same object as its entry in the candidate list, so downstream
        identity checks (``RibEntry.alternatives``) behave exactly as with
        the legacy engine.
        """
        tables: dict[ASN, tuple[list[Route], Route | None]] = {}
        asns = self.topology.asns
        states = self._states
        gen = self._generation
        route_of = self.route_of
        for asn_idx in self.topology.observed:
            state = states[asn_idx]
            # A state whose candidates were all withdrawn is recorded as no
            # entry at all, exactly like the legacy `_record_observed`.
            if state is None or state.gen != gen or not state.cand:
                continue
            routes: list[Route] = []
            best_route: Route | None = None
            best_sender = state.best_sender
            for sender, cand in state.cand.items():
                route = route_of(prefix, sender, cand)
                routes.append(route)
                if sender == best_sender:
                    best_route = route
            tables[asns[asn_idx]] = (routes, best_route)
        return tables

    # -- lowered results (process-pool wire format) --------------------------

    def lowered_observed(self, out: array) -> tuple:
        """Append the last ``run_task``'s observed candidates to ``out``.

        The wire format of a worker's results: five integers per candidate
        row — sender, LOCAL_PREF, path id, community id, kind — appended in
        the exact per-AS insertion order :meth:`observed_routes` would
        materialize, plus a returned meta tuple of ``(asn_idx, best_sender,
        candidate count)`` per observed AS.  Flat columns pickle as raw
        machine bytes, so shipping a shard's tables back to the parent
        costs a fraction of pickling materialized :class:`Route` objects.
        """
        meta = []
        states = self._states
        gen = self._generation
        for asn_idx in self.topology.observed:
            state = states[asn_idx]
            if state is None or state.gen != gen or not state.cand:
                continue
            best_sender = state.best_sender
            meta.append(
                (asn_idx, -1 if best_sender is None else best_sender, len(state.cand))
            )
            for sender, cand in state.cand.items():
                out.extend((sender, cand[0], cand[2], cand[3], cand[4]))
        return tuple(meta)

    def lowered_tables(self) -> tuple[array, array, array, array]:
        """The core's intern tables in flat column form.

        ``(path_indptr, path_flat, comm_indptr, comm_flat)`` — the id
        spaces referenced by :meth:`lowered_observed` rows, for the parent
        to rebuild :class:`ASPath`/:class:`CommunitySet` objects from.
        """
        path_indptr = array("q", [0])
        path_flat = array("q")
        for path in self._paths:
            path_flat.extend(path)
            path_indptr.append(len(path_flat))
        comm_indptr = array("q", [0])
        comm_flat = array("q")
        for members in self._comm_members:
            for pair in members:
                comm_flat.extend(pair)
            comm_indptr.append(len(comm_flat))
        return path_indptr, path_flat, comm_indptr, comm_flat


# -- process-pool fan-out ------------------------------------------------------

#: Worker-side memo of attached cores, keyed by ``(descriptor, budget)``
#: shipped with each shard — a pure function of the task arguments, which
#: is what makes this module-level state pool-safe (see ``AttachCache``).
_SHARD_CORES = AttachCache(lambda key: _Core(attach(key[0]), key[1]))


def _shard_ranges(task_count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal task ranges covering ``range(task_count)``.

    More shards than workers (up to 4× as many) keeps the pool load-balanced
    when per-prefix cost is skewed, while each shard stays large enough to
    amortize its attach + result-shipping overhead.
    """
    shard_count = min(task_count, workers * 4)
    base, extra = divmod(task_count, shard_count)
    ranges = []
    start = 0
    for index in range(shard_count):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _run_shard(
    descriptor: tuple, message_budget: int, start: int, stop: int
) -> tuple[list, array, tuple]:
    """Propagate one contiguous task range against the attached topology.

    Workers never see a pickled topology: ``descriptor`` names a shared
    segment (or a cached artifact file) and the attached zero-copy view is
    memoized per process, so every shard after the first is pure compute.
    """
    fault_point("worker-kill", f"propagation-shard:{start}:{stop}")
    core = _SHARD_CORES.get((descriptor, message_budget))
    topology = core.topology
    cand = array("q")
    meta = []
    for task_index in range(start, stop):
        origin_idx, prefix = topology.origin_tasks[task_index]
        processed, truncated = core.run_task(
            origin_idx, prefix, topology.seed_for(task_index)
        )
        meta.append((task_index, processed, truncated, core.lowered_observed(cand)))
    return meta, cand, core.lowered_tables()


class _ShardMerger:
    """Parent-side materialization of lowered shard results.

    Rebuilds :class:`ASPath` and :class:`CommunitySet` objects from each
    shard's interned tables, memoized across shards (by dense path tuple /
    community pair set) so structure shared between shards is built once.
    """

    def __init__(self, topology: CompiledTopology | SharedTopologyView) -> None:
        self._asns = topology.asns
        self._aspath_memo: dict[tuple[int, ...], ASPath] = {}
        self._comm_memo: dict[frozenset, CommunitySet] = {}

    def load_shard(self, tables: tuple) -> None:
        """Switch to one shard's id spaces (its interned tables)."""
        path_indptr, path_flat, comm_indptr, comm_flat = tables
        self._path_indptr = path_indptr
        self._path_flat = path_flat
        self._path_cache: list[ASPath | None] = [None] * (len(path_indptr) - 1)
        self._comm_indptr = comm_indptr
        self._comm_flat = comm_flat
        self._comm_cache: list[CommunitySet | None] = [None] * (len(comm_indptr) - 1)

    def _aspath_of(self, path_id: int) -> ASPath:
        as_path = self._path_cache[path_id]
        if as_path is None:
            indptr = self._path_indptr
            dense = tuple(self._path_flat[indptr[path_id] : indptr[path_id + 1]])
            as_path = self._aspath_memo.get(dense)
            if as_path is None:
                asns = self._asns
                as_path = ASPath._from_validated(tuple(asns[i] for i in dense))
                self._aspath_memo[dense] = as_path
            self._path_cache[path_id] = as_path
        return as_path

    def _communities_of(self, comm_id: int) -> CommunitySet:
        communities = self._comm_cache[comm_id]
        if communities is None:
            indptr = self._comm_indptr
            flat = self._comm_flat
            pairs = frozenset(
                (flat[k], flat[k + 1])
                for k in range(indptr[comm_id], indptr[comm_id + 1], 2)
            )
            communities = self._comm_memo.get(pairs)
            if communities is None:
                communities = CommunitySet(
                    Community(asn, value) for asn, value in pairs
                )
                self._comm_memo[pairs] = communities
            self._comm_cache[comm_id] = communities
        return communities

    def route_of(
        self, prefix: Prefix, sender_idx: int, lp: int, path_id: int, comm_id: int, kind: int
    ) -> Route:
        """Materialize one lowered candidate row (same fields as the core)."""
        route = Route.__new__(Route)
        set_field = _SET_FIELD
        set_field(route, "prefix", prefix)
        set_field(route, "as_path", self._aspath_of(path_id))
        set_field(route, "origin", Origin.IGP)
        set_field(route, "med", 0)
        set_field(route, "communities", self._communities_of(comm_id))
        set_field(route, "learned_from", self._asns[sender_idx])
        set_field(route, "igp_metric", 0)
        set_field(route, "router_id", 0)
        if kind == KIND_LOCAL:
            set_field(route, "local_pref", DEFAULT_LOCAL_PREF)
            set_field(route, "source", RouteSource.LOCAL)
            set_field(route, "neighbor_kind", NeighborKind.UNKNOWN)
        else:
            set_field(route, "local_pref", lp)
            set_field(route, "source", RouteSource.EBGP)
            set_field(route, "neighbor_kind", _KIND_TO_NEIGHBOR_KIND[kind])
        return route


class FastPropagationEngine:
    """Drop-in fast replacement for :class:`PropagationEngine`.

    Args:
        internet: the synthetic Internet (graph + prefix ownership).
        assignment: per-AS policies.
        observed_ases: ASes whose final tables are retained; defaults to the
            Tier-1 clique.
        message_budget_per_prefix: safety valve against policy-induced
            oscillation (same semantics as the legacy engine).
        workers: per-prefix fan-out width.  ``1`` runs in-process; ``N > 1``
            cuts the originated-prefix list into contiguous shards over a
            process pool on the zero-copy path — the compiled topology is
            published to shared memory (or attached from a cached artifact
            file) and workers attach by name — then merges the lowered
            shard results deterministically in task order.
        compiled: an already-compiled topology to reuse (skips
            compilation); either a :class:`CompiledTopology` or a
            :class:`SharedTopologyView` attached from the store, in which
            case pool workers re-attach the same artifact instead of the
            parent publishing a segment.

    Attributes:
        last_run_phases: wall-clock seconds of the most recent :meth:`run`,
            split into ``compile`` (topology compilation, paid in the
            constructor), ``publish`` (lowering + shared-memory copy),
            ``compute`` (pool execution, or the whole serial loop) and
            ``merge`` (parent-side materialization of shard results).
    """

    def __init__(
        self,
        internet: SyntheticInternet,
        assignment: PolicyAssignment,
        observed_ases: list[ASN] | None = None,
        message_budget_per_prefix: int = 500_000,
        workers: int = 1,
        compiled: CompiledTopology | SharedTopologyView | None = None,
    ) -> None:
        self.internet = internet
        self.assignment = assignment
        self.graph = internet.graph
        self.observed_ases = sorted(
            set(observed_ases if observed_ases is not None else internet.tier1)
        )
        self.message_budget_per_prefix = message_budget_per_prefix
        self.workers = max(1, int(workers))
        self.decision = DecisionProcess()
        started = perf_counter()
        self.compiled = (
            compiled
            if compiled is not None
            else compile_topology(internet, assignment, self.observed_ases)
        )
        self._compile_seconds = 0.0 if compiled is not None else perf_counter() - started
        self.last_run_phases: dict[str, float] = {}
        self._core: _Core | None = None

    # -- public API ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Propagate every originated prefix and return the observed tables."""
        result = SimulationResult(internet=self.internet, assignment=self.assignment)
        for asn in self.observed_ases:
            result.tables[asn] = LocRib(owner=asn, decision=self.decision)
        topology = self.compiled
        tasks = topology.origin_tasks
        if self.workers == 1 or len(tasks) <= 1:
            started = perf_counter()
            core = self._local_core()
            seeds = topology.seeds
            for origin_idx, prefix in tasks:
                processed, truncated = core.run_task(
                    origin_idx, prefix, seeds[(origin_idx, prefix)]
                )
                result.message_count += processed
                if truncated:
                    result.truncated_prefixes.append(prefix)
                for asn, (routes, best) in core.observed_routes(prefix).items():
                    result.tables[asn].load_entry(prefix, routes, best)
            self.last_run_phases = {
                "compile": self._compile_seconds,
                "publish": 0.0,
                "compute": perf_counter() - started,
                "merge": 0.0,
            }
            return result

        # Zero-copy fan-out: publish once (unless the topology is already an
        # attached artifact view), ship only (descriptor, range) per shard,
        # and always unlink the owned segment — engine exceptions and killed
        # workers included.
        shards = _shard_ranges(len(tasks), self.workers)
        budget = self.message_budget_per_prefix
        publish_seconds = 0.0
        handle = None
        descriptor = getattr(topology, "descriptor", None)
        if descriptor is None:
            started = perf_counter()
            handle = publish(topology)
            descriptor = handle.descriptor
            publish_seconds = perf_counter() - started
        started = perf_counter()
        try:
            with ProcessPoolExecutor(
                max_workers=self.workers, initializer=mark_worker
            ) as pool:
                futures = [
                    pool.submit(_run_shard, descriptor, budget, start, stop)
                    for start, stop in shards
                ]
                shard_results = [future.result() for future in futures]
        finally:
            if handle is not None:
                handle.unlink()
        compute_seconds = perf_counter() - started

        # Shards are contiguous and submitted in task order, so walking them
        # in submission order is the deterministic task-order merge.
        started = perf_counter()
        asns = topology.asns
        merger = _ShardMerger(topology)
        for meta, cand, intern_tables in shard_results:
            merger.load_shard(intern_tables)
            route_of = merger.route_of
            cursor = 0
            for task_index, processed, truncated, table_meta in meta:
                result.message_count += processed
                prefix = tasks[task_index][1]
                if truncated:
                    result.truncated_prefixes.append(prefix)
                for asn_idx, best_sender, count in table_meta:
                    routes = []
                    best_route = None
                    for _ in range(count):
                        sender = cand[cursor]
                        route = route_of(
                            prefix,
                            sender,
                            cand[cursor + 1],
                            cand[cursor + 2],
                            cand[cursor + 3],
                            cand[cursor + 4],
                        )
                        cursor += 5
                        routes.append(route)
                        if sender == best_sender:
                            best_route = route
                    result.tables[asns[asn_idx]].load_entry(prefix, routes, best_route)
        self.last_run_phases = {
            "compile": self._compile_seconds,
            "publish": publish_seconds,
            "compute": compute_seconds,
            "merge": perf_counter() - started,
        }
        return result

    def run_prefix(self, prefix: Prefix, origin: ASN) -> PrefixRun:
        """Propagate a single prefix and return the full per-AS state.

        API- and result-compatible with :meth:`PropagationEngine.run_prefix`.
        """
        topology = self.compiled
        origin_idx = topology.index_of.get(origin)
        if origin_idx is None:
            raise SimulationError(f"origin AS{origin} is not in the graph")
        core = self._local_core()
        seed = topology.seeds.get((origin_idx, prefix))
        if seed is None:
            seed = self._adhoc_seed(origin, prefix, core)
        processed, truncated = core.run_task(origin_idx, prefix, seed)
        states: dict[ASN, PrefixState] = {}
        asns = topology.asns
        for asn_idx, raw in core.states().items():
            state = PrefixState()
            for sender, cand in raw.cand.items():
                route = core.route_of(prefix, sender, cand)
                state.candidates[asns[sender]] = route
                if sender == raw.best_sender:
                    state.best = route
            state.announced_to = {asns[i] for i in raw.announced}
            states[asns[asn_idx]] = state
        return PrefixRun(states=states, message_count=processed, truncated=truncated)

    # -- helpers -------------------------------------------------------------

    def _local_core(self) -> _Core:
        if self._core is None:
            self._core = _Core(self.compiled, self.message_budget_per_prefix)
        return self._core

    def _adhoc_seed(self, origin: ASN, prefix: Prefix, core: _Core) -> SeedPlan:
        """Seed plan for a (prefix, origin) pair outside the compiled set."""
        graph = self.graph
        by_rel: dict[int, list[ASN]] = {code: [] for code in range(4)}
        rel_code = {
            "customer": REL_CUSTOMER,
            "peer": REL_PEER,
            "provider": REL_PROVIDER,
            "sibling": REL_SIBLING,
        }
        for neighbor, relationship in sorted(graph.neighbor_items(origin)):
            by_rel[rel_code[relationship.value]].append(neighbor)
        return compile_seed_plan(
            self.compiled,
            self.assignment.policy_for(origin),
            by_rel[REL_PROVIDER],
            by_rel[REL_PEER],
            by_rel[REL_CUSTOMER],
            by_rel[REL_SIBLING],
            prefix,
            core.intern_communities,
        )
