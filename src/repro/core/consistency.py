"""Consistency of LOCAL_PREF with next-hop ASes (paper Section 4.2, Fig. 2).

Operators can key LOCAL_PREF either on the next-hop AS (one value per
neighbor) or on the prefix.  The paper measures, per AS, the percentage of
prefixes whose LOCAL_PREF equals the value the AS uses for that next-hop AS
in general — i.e. prefixes whose preference is explained by the neighbor
alone.  Fig. 2(a) reports this for 14 ASes; Fig. 2(b) repeats it per router
inside one large AS (AT&T, 30 backbone routers).

The "value the AS uses for that next-hop AS in general" is taken to be the
most common (modal) LOCAL_PREF among the routes learned from that neighbor,
which is how it would be estimated from a routing table without access to
the configuration.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.bgp.rib import LocRib
from repro.net.asn import ASN
from repro.simulation.collector import LookingGlass


@dataclass
class ConsistencyResult:
    """Next-hop consistency of LOCAL_PREF for one table.

    Attributes:
        asn: the AS the table belongs to.
        router_id: router identifier for per-router views (0 for the AS view).
        total_routes: routes considered (non-local candidate routes).
        consistent_routes: routes whose LOCAL_PREF equals their neighbor's
            modal value.
        neighbor_modes: the modal LOCAL_PREF per next-hop AS.
    """

    asn: ASN
    router_id: int = 0
    total_routes: int = 0
    consistent_routes: int = 0
    neighbor_modes: dict[ASN, int] = field(default_factory=dict)

    @property
    def percent_consistent(self) -> float:
        """Percentage of routes whose LOCAL_PREF is explained by the next-hop AS."""
        if self.total_routes == 0:
            return 100.0
        return 100.0 * self.consistent_routes / self.total_routes


class ConsistencyAnalyzer:
    """Measures how much of an AS's LOCAL_PREF assignment is next-hop based."""

    def analyze_table(self, table: LocRib, router_id: int = 0) -> ConsistencyResult:
        """Analyse one routing table (an AS view or a single router view)."""
        per_neighbor: dict[ASN, Counter] = defaultdict(Counter)
        for entry in table.entries():
            for route in entry.routes:
                if route.is_local:
                    continue
                per_neighbor[route.next_hop_as][route.local_pref] += 1
        result = ConsistencyResult(asn=table.owner, router_id=router_id)
        for neighbor, counts in per_neighbor.items():
            mode_value, mode_count = counts.most_common(1)[0]
            result.neighbor_modes[neighbor] = mode_value
            result.total_routes += sum(counts.values())
            result.consistent_routes += mode_count
        return result

    def analyze_looking_glass(self, glass: LookingGlass) -> ConsistencyResult:
        """Fig. 2(a): the consistency of one Looking Glass AS."""
        return self.analyze_table(glass.table)

    def analyze_many(self, glasses: list[LookingGlass]) -> list[ConsistencyResult]:
        """Fig. 2(a): consistency for a set of Looking Glass ASes."""
        return [self.analyze_looking_glass(glass) for glass in glasses]

    def analyze_routers(
        self,
        glass: LookingGlass,
        router_count: int = 30,
        per_prefix_override_fraction: float = 0.05,
        seed: int = 7,
    ) -> list[ConsistencyResult]:
        """Fig. 2(b): per-router consistency inside one AS.

        The router views are synthesised by the Looking Glass (each router
        mostly follows the AS-wide policy with a few router-local per-prefix
        overrides), then each view is analysed independently.
        """
        views = glass.router_views(
            router_count=router_count,
            per_prefix_override_fraction=per_prefix_override_fraction,
            seed=seed,
        )
        return [
            self.analyze_table(view, router_id=index + 1)
            for index, view in enumerate(views)
        ]
