"""Compiled measurement index and the one-pass analyzer engine.

This package is the "compile once, query many" layer between the
observation stage and the paper's analyses:

* :mod:`repro.analysis.index` — :class:`MeasurementIndex` lowers the
  collector table, the Looking Glass views and the IRR database into dense
  columnar arrays with interned prefixes/AS paths and precomputed groupings.
* :mod:`repro.analysis.engine` — :class:`AnalysisEngine` runs every
  :mod:`repro.core` analysis as a one-pass query over the shared index,
  with results identical to the legacy analyzers (golden equivalence suite
  in ``tests/analysis/``).
* :mod:`repro.analysis.persistence` — the snapshot-sharing fast path for
  the Figs. 6/7 persistence study.

The session layer exposes the engine as the cached ``ANALYSIS`` stage
(``Stage.ANALYSIS`` / ``StageView.analysis``); experiments declare it in
``requires`` and query the engine instead of re-walking raw tables.
"""

from repro.analysis.engine import AnalysisEngine
from repro.analysis.index import GlassIndex, IrrRow, MeasurementIndex, TableIndex
from repro.analysis.persistence import (
    SnapshotSACore,
    persistence_series,
    uptime_distribution,
)

__all__ = [
    "AnalysisEngine",
    "GlassIndex",
    "IrrRow",
    "MeasurementIndex",
    "SnapshotSACore",
    "TableIndex",
    "persistence_series",
    "uptime_distribution",
]
