"""Table 3 — typical LOCAL_PREF assignment inferred from the IRR."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table3Experiment(Experiment):
    """Typical LOCAL_PREF for ASes registered in the (synthetic) IRR."""

    experiment_id = "table3"
    title = "Typical local preference assignment (from the IRR)"
    paper_reference = "Table 3, Section 4.1"
    requires = frozenset({Stage.ANALYSIS})

    #: Minimum number of neighbors with registered preferences and known
    #: relationships (the paper uses 50 on the real Internet; the synthetic
    #: Internet is smaller, so the bar is lowered proportionally).
    min_neighbors = 5

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        rows = dataset.analysis.irr_typicality(
            min_neighbors=self.min_neighbors, updated_during="2002"
        )
        rows.sort(key=lambda r: r.neighbor_count)
        result.headers = ["AS", "registered neighbors", "% typical local preference"]
        for row in rows:
            result.rows.append(
                [f"AS{row.asn}", row.neighbor_count, format_percent(row.percent_typical, 1)]
            )
        result.notes.append(
            f"{len(rows)} ASes pass the filters (updated during 2002, "
            f">= {self.min_neighbors} registered neighbors); paper Table 3 lists 62 ASes "
            "with 80%-100% typical local preference."
        )
        return result
