"""Benchmark: reproduce Table 5 (percentage of SA prefixes per provider).

Paper shape: SA prefixes are prevalent but a minority — between 0% and ~49%
of customer prefixes per provider, with the big Tier-1s in the tens of
percent.
"""


def test_bench_table5(benchmark, run_experiment):
    result = run_experiment(benchmark, "table5")
    percentages = [float(row[-1].rstrip("%")) for row in result.rows]
    assert percentages
    assert max(percentages) > 3.0, "expected a significant number of SA prefixes"
    assert max(percentages) < 60.0, "SA prefixes should remain a minority"
    tier1_rows = [row for row in result.rows if row[1] == "yes"]
    assert any(row[3] > 0 for row in tier1_rows), "Tier-1s should observe SA prefixes"
