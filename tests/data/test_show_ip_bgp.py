"""Tests for the Cisco-style show ip bgp text formats."""

import pytest

from repro.bgp.attributes import CommunitySet, Origin
from repro.bgp.rib import LocRib
from repro.bgp.route import NeighborKind, Route, originate
from repro.data.show_ip_bgp import (
    format_show_ip_bgp_detail,
    format_show_ip_bgp_table,
    parse_show_ip_bgp_detail,
    parse_show_ip_bgp_table,
)
from repro.exceptions import DataFormatError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def sample_table(owner=12859):
    table = LocRib(owner=owner)
    table.add_route(
        Route(
            prefix=Prefix.parse("80.96.180.0/24"),
            as_path=ASPath.parse("8220 12878 5606 15471"),
            local_pref=210,
            med=5,
            communities=CommunitySet(["12859:1000"]),
            neighbor_kind=NeighborKind.PEER,
        )
    )
    table.add_route(
        Route(
            prefix=Prefix.parse("80.96.180.0/24"),
            as_path=ASPath.parse("3356 5606 15471"),
            local_pref=80,
        )
    )
    table.add_route(originate(Prefix.parse("10.128.0.0/16"), origin_as=owner))
    return table


class TestTableFormat:
    def test_roundtrip(self):
        table = sample_table()
        text = format_show_ip_bgp_table(table)
        parsed = parse_show_ip_bgp_table(text, view_as=12859)
        assert len(parsed) == len(table)
        prefix = Prefix.parse("80.96.180.0/24")
        assert len(parsed.all_routes(prefix)) == 2
        assert parsed.best_route(prefix).local_pref == 210
        assert str(parsed.best_route(prefix).as_path) == "8220 12878 5606 15471"

    def test_best_marker_present(self):
        text = format_show_ip_bgp_table(sample_table())
        assert "*>" in text
        assert text.count("*>") == 2  # one best per prefix

    def test_local_route_roundtrip(self):
        text = format_show_ip_bgp_table(sample_table())
        parsed = parse_show_ip_bgp_table(text, view_as=12859)
        local = parsed.best_route(Prefix.parse("10.128.0.0/16"))
        assert local is not None
        assert local.as_path.origin_as == 12859

    def test_unparsable_line_rejected(self):
        with pytest.raises(DataFormatError):
            parse_show_ip_bgp_table("*> not a prefix at all\n", view_as=1)

    def test_non_route_lines_ignored(self):
        text = "BGP table version is 1\nsome banner\n"
        parsed = parse_show_ip_bgp_table(text, view_as=1)
        assert len(parsed) == 0


class TestDetailFormat:
    def test_matches_paper_example_shape(self):
        table = sample_table()
        entry = table.entry(Prefix.parse("80.96.180.0/24"))
        text = format_show_ip_bgp_detail(entry, view_as=12859)
        assert "BGP routing table entry for 80.96.180.0/24" in text
        assert "Paths: (2 available" in text
        assert "8220 12878 5606 15471" in text
        assert "localpref 210" in text
        assert "Community: 12859:1000" in text
        assert "best" in text

    def test_roundtrip(self):
        table = sample_table()
        entry = table.entry(Prefix.parse("80.96.180.0/24"))
        text = format_show_ip_bgp_detail(entry, view_as=12859)
        parsed = parse_show_ip_bgp_detail(text, view_as=12859)
        assert parsed.prefix == entry.prefix
        assert len(parsed.routes) == 2
        assert parsed.best is not None
        assert parsed.best.local_pref == 210
        assert parsed.best.communities.has("12859:1000")
        assert parsed.best.med == 5
        by_path = {str(r.as_path): r for r in parsed.routes}
        assert by_path["3356 5606 15471"].local_pref == 80

    def test_local_route_detail(self):
        table = sample_table()
        entry = table.entry(Prefix.parse("10.128.0.0/16"))
        text = format_show_ip_bgp_detail(entry, view_as=12859)
        parsed = parse_show_ip_bgp_detail(text, view_as=12859)
        assert parsed.routes[0].as_path.origin_as == 12859

    def test_learned_from_recovered(self):
        table = sample_table()
        entry = table.entry(Prefix.parse("80.96.180.0/24"))
        parsed = parse_show_ip_bgp_detail(
            format_show_ip_bgp_detail(entry, view_as=12859), view_as=12859
        )
        assert {r.next_hop_as for r in parsed.routes} == {8220, 3356}

    def test_missing_header_rejected(self):
        with pytest.raises(DataFormatError):
            parse_show_ip_bgp_detail("no header here", view_as=1)

    def test_empty_entry_rejected(self):
        from repro.bgp.rib import RibEntry

        with pytest.raises(DataFormatError):
            format_show_ip_bgp_detail(RibEntry(prefix=Prefix.parse("10.0.0.0/8")), view_as=1)
