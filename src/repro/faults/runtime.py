"""Process-local fault-plan activation and the injection hooks.

The storage and sweep layers call :func:`fault_point` /
:func:`corrupt_artifact` at their injection sites.  With no plan active
(the production default) both are a single ``None`` check — no I/O, no
hashing, no overhead.

A plan activates one of two ways:

* explicitly, via :func:`activate` (the sweep orchestrator and the chaos
  harness do this, and also export the plan through :data:`PLAN_ENV` so
  process-pool workers — forked *or* spawned — pick it up), or
* lazily from the environment: the first injection-site call in a process
  reads :data:`PLAN_ENV` (inline JSON or a file path).

Worker processes are marked via :func:`mark_worker` (installed as the
process-pool initializer), which switches ``worker-kill`` firings from a
raised :class:`~repro.faults.plan.FaultInjected` to a hard ``os._exit`` —
a real abrupt death the parent sees as ``BrokenProcessPool``.
"""

from __future__ import annotations

import errno
import os
import sys
import time

from repro.faults.plan import FaultInjected, FaultPlan, FaultPlanError

#: Environment variable carrying the active plan (inline JSON or a path).
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status of a worker killed by an injected ``worker-kill`` fault.
KILL_EXIT_CODE = 76

# Process-local activation state.  Workers forked from an activated parent
# inherit it; spawned workers re-load lazily from PLAN_ENV.
_PLAN: FaultPlan | None = None
_LOADED = False
_IN_WORKER = False


def activate(plan: FaultPlan | None, *, export: bool = True) -> None:
    """Make ``plan`` the process's active fault plan.

    Args:
        plan: the plan, or ``None`` to deactivate.
        export: also publish the plan into :data:`PLAN_ENV` (or remove it),
            so child processes — including spawned ones — inherit it.
    """
    global _PLAN, _LOADED
    _PLAN = plan
    _LOADED = True
    if export:
        if plan is None:
            os.environ.pop(PLAN_ENV, None)
        else:
            os.environ[PLAN_ENV] = plan.to_json()


def deactivate() -> None:
    """Clear the active plan and its environment export."""
    activate(None)


def reset() -> None:
    """Forget the process-local state; the next call re-reads the env.

    Used by the sweep orchestrator after a plan-scoped run (and by tests)
    so a restored ``REPRO_FAULT_PLAN`` environment value takes effect
    again through the lazy loader.
    """
    global _PLAN, _LOADED, _IN_WORKER
    _PLAN = None
    _LOADED = False
    _IN_WORKER = False


def active_plan() -> FaultPlan | None:
    """The process's active plan, lazily loaded from :data:`PLAN_ENV`."""
    global _PLAN, _LOADED
    if not _LOADED:
        _LOADED = True
        raw = os.environ.get(PLAN_ENV)
        if raw:
            try:
                _PLAN = FaultPlan.load(raw)
            except FaultPlanError as error:
                # A malformed env plan must not wedge every store call; warn
                # once and run fault-free.
                print(f"warning: ignoring {PLAN_ENV}: {error}", file=sys.stderr)
                _PLAN = None
    return _PLAN


def mark_worker() -> None:
    """Mark this process as a pool worker (``worker-kill`` exits hard).

    Installed as the sweep pool's ``initializer``; also primes the plan
    from the environment so the first case does not pay the lazy load.
    """
    global _IN_WORKER
    _IN_WORKER = True
    active_plan()


def in_worker() -> bool:
    """``True`` inside a process-pool worker marked by :func:`mark_worker`."""
    return _IN_WORKER


def fault_point(site: str, identity: str) -> None:
    """Injection site: raise/sleep/die when the active plan says so.

    Args:
        site: the site name (see :data:`repro.faults.plan.SITES`).
        identity: the operation's stable identity.

    Raises:
        OSError: for a firing ``store-write`` rule (``ENOSPC``/``EIO``).
        FaultInjected: for a firing ``worker-kill`` rule outside a pool
            worker (inside one, the process exits with
            :data:`KILL_EXIT_CODE` instead).
    """
    plan = _PLAN if _LOADED else active_plan()
    if plan is None:
        return
    rule = plan.fires(site, identity)
    if rule is None:
        return
    if site == "latency":
        time.sleep(float(rule.param or 0.0))
    elif site == "store-write":
        code = getattr(errno, str(rule.param), errno.EIO)
        raise OSError(code, f"injected {rule.param} (fault plan seed {plan.seed})")
    elif site == "worker-kill":
        if _IN_WORKER:
            os._exit(KILL_EXIT_CODE)
        raise FaultInjected(f"injected worker kill (fault plan seed {plan.seed})")


def corrupt_artifact(path: os.PathLike | str, identity: str) -> None:
    """Injection site: damage a just-written artifact file in place.

    Applies the firing ``store-corrupt`` rule's mode: ``flip`` (xor one
    mid-file byte), ``truncate`` (drop the second half) or ``zero``
    (truncate to an empty file).  Corruption is injected *after* the
    atomic write completes, modelling storage that acknowledged a write
    and then rotted.
    """
    plan = _PLAN if _LOADED else active_plan()
    if plan is None:
        return
    rule = plan.fires("store-corrupt", identity)
    if rule is None:
        return
    try:
        data = bytearray(open(path, "rb").read())
        if rule.param == "zero" or not data:
            open(path, "wb").close()
        elif rule.param == "truncate":
            with open(path, "wb") as handle:
                handle.write(bytes(data[: len(data) // 2]))
        else:  # flip
            data[len(data) // 2] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(bytes(data))
    except OSError:
        return  # the artifact vanished under us; nothing left to corrupt
