"""File collection and CLI glue for ``python -m repro lint``.

:func:`lint_paths` is the library entry point (used by tests and the CLI
alike): collect ``*.py`` files, parse each into a
:class:`~repro.devtools.engine.ModuleUnderLint`, run the registered rules
and return a :class:`~repro.devtools.model.LintReport`.  :func:`run_lint`
wraps it for the argparse subcommand, adding ``--json`` output and the
baseline modes (``--baseline`` to enforce, ``--write-baseline`` to
regenerate while keeping existing rationales).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.baseline import Baseline
from repro.devtools.engine import (
    PARSE_RULE,
    LintContext,
    ModuleUnderLint,
    Rule,
    all_rules,
    lint_module,
    rule_ids,
)
from repro.devtools.model import Finding, LintReport

#: Directory names never descended into while collecting files.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: Default lint targets, relative to the project root.
DEFAULT_PATHS = ("src", "scripts")

#: Default baseline file name, relative to the project root.
DEFAULT_BASELINE = "lint-baseline.json"


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Every ``*.py`` file under the given files/directories, sorted.

    Args:
        paths: files (taken as-is when ``.py``) and directories (recursed).

    Returns:
        Unique absolute paths in sorted order — directory walks use
        ``sorted(rglob)`` so the lint run itself is deterministic.
    """
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py") if not _skipped(p))
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(p.resolve() for p in seen)


def _skipped(path: Path) -> bool:
    """``True`` when any path component is a skip directory."""
    return any(part in _SKIP_DIRS for part in path.parts)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    rules: Iterable[Rule] | None = None,
    respect_scopes: bool = True,
) -> LintReport:
    """Lint files/directories and return the structured report.

    Args:
        paths: targets to collect ``*.py`` files from.
        root: project root; findings use paths relative to it, and import
            resolution for cross-module rules searches ``root/src`` then
            ``root``.
        rules: the rules to run (default: every registered rule).
        respect_scopes: honour per-rule ``applies_to`` scoping.

    Returns:
        The report; unparseable files contribute one ``LINT002`` finding
        each instead of aborting the run.
    """
    context = LintContext(root=root, src_roots=(root / "src", root))
    selected = list(rules) if rules is not None else all_rules()
    report = LintReport(rules=[rule.id for rule in selected])
    for file_path in collect_files(paths):
        report.files += 1
        display = _display_path(file_path, root)
        try:
            source = file_path.read_text()
            module = ModuleUnderLint.parse(display, source)
        except (OSError, SyntaxError, ValueError) as error:
            report.findings.append(
                Finding(
                    rule=PARSE_RULE,
                    path=display,
                    line=getattr(error, "lineno", None) or 1,
                    column=0,
                    message=f"cannot lint file: {error}",
                )
            )
            continue
        report.findings.extend(
            lint_module(module, context, rules=selected, respect_scopes=respect_scopes)
        )
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.column))
    return report


def _display_path(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` as posix, or absolute when outside."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _iter_rule_listing() -> Iterator[str]:
    """Human-readable ``ID  summary`` lines for every registered rule."""
    for rule in all_rules():
        yield f"{rule.id}  [{rule.family}]  {rule.summary}"
    yield "LINT001  [LINT]  unused or unknown inline suppression"
    yield "LINT002  [LINT]  file could not be parsed"


def build_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="project root for relative paths and import resolution",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help=(
            "enforce the committed baseline (findings must be acknowledged "
            f"with rationales; stale entries fail). Default file: {DEFAULT_BASELINE}"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="regenerate the baseline from current findings, keeping rationales",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute the ``lint`` subcommand.

    Args:
        args: parsed arguments from :func:`build_parser`.

    Returns:
        ``0`` when clean, ``1`` on findings/baseline errors, ``2`` on
        usage or configuration errors.
    """
    if args.list_rules:
        for line in _iter_rule_listing():
            print(line)
        return 0
    root = args.root.resolve()
    targets = [
        (root / p if not Path(p).is_absolute() else Path(p))
        for p in (args.paths or DEFAULT_PATHS)
    ]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    report = lint_paths(targets, root)
    if args.write_baseline is not None:
        baseline_path = root / args.write_baseline
        try:
            previous = Baseline.load(baseline_path)
        except ValueError:
            previous = None
        Baseline.from_findings(report.findings, previous).save(baseline_path)
        print(
            f"wrote {len(report.findings)} entr(ies) to "
            f"{_display_path(baseline_path, root)}"
        )
        return 0
    if args.baseline is not None:
        baseline_path = root / args.baseline
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as error:
            print(f"lint: {error}", file=sys.stderr)
            return 2
        report.findings, report.baseline_errors = baseline.apply(report.findings)
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.devtools.lint``)."""
    parser = build_parser(
        argparse.ArgumentParser(prog="repro-lint", description=__doc__)
    )
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "build_parser",
    "collect_files",
    "lint_paths",
    "main",
    "run_lint",
    "rule_ids",
]
