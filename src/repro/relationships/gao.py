"""Gao-style AS-relationship inference from AS paths (reference [12]).

The paper infers AS relationships from a collection of BGP routing tables
using the algorithm of Gao (ToN 2001).  The algorithm rests on two
observations about valley-free routing:

* along any observed AS path there is a single *top provider* — walking away
  from it in either direction descends the provider→customer hierarchy, and
* a peer-to-peer edge can only ever appear *adjacent to* the top provider
  (there is at most one peer step, at the top of the hill).

The implementation here follows that structure:

1. compute each AS's degree from the paths (Phase 1),
2. for every adjacent pair in every path, record a *transit vote* saying
   "the AS nearer the top provider is a provider of the other"; votes from
   pairs adjacent to the top provider are kept separate because they are the
   ambiguous ones (Phase 2),
3. classify each edge: confident transit votes give provider-to-customer (or
   sibling when both directions are confidently observed); edges whose only
   evidence is top-adjacent are classified peer-to-peer when the two degrees
   are comparable, otherwise provider-to-customer toward the larger AS
   (Phase 3).

The output is an :class:`~repro.topology.graph.AnnotatedASGraph` plus the
vote bookkeeping, so the validation module can report where and why the
inference disagrees with ground truth.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import InferenceError
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class InferredRelationships:
    """Result of a relationship-inference run.

    Attributes:
        graph: the inferred annotated AS graph.
        degrees: the AS degree map computed from the paths.
        transit_votes: ``(provider, customer) -> count`` of confident
            (non-top-adjacent) transit observations.
        ambiguous_votes: the same counts for top-adjacent observations.
    """

    graph: AnnotatedASGraph
    degrees: dict[ASN, int] = field(default_factory=dict)
    transit_votes: Counter = field(default_factory=Counter)
    ambiguous_votes: Counter = field(default_factory=Counter)

    def relationship(self, asn: ASN, neighbor: ASN) -> Relationship | None:
        """Convenience passthrough to the inferred graph."""
        return self.graph.relationship(asn, neighbor)


class GaoInference:
    """Infer AS relationships from a collection of AS paths.

    Args:
        peer_degree_ratio: two ASes joined by an edge whose only evidence is
            top-adjacent are called peers when the ratio of their degrees is
            at most this value (Gao's ``R`` parameter).
        sibling_threshold: minimum number of confident votes in *both*
            directions required to call an edge sibling-to-sibling (Gao's
            ``L`` parameter).
    """

    def __init__(self, peer_degree_ratio: float = 8.0, sibling_threshold: int = 2) -> None:
        if peer_degree_ratio < 1.0:
            raise InferenceError("peer_degree_ratio must be >= 1")
        if sibling_threshold < 1:
            raise InferenceError("sibling_threshold must be >= 1")
        self.peer_degree_ratio = peer_degree_ratio
        self.sibling_threshold = sibling_threshold

    # -- public API ---------------------------------------------------------

    def infer(self, paths: Iterable[ASPath | Iterable[ASN]]) -> InferredRelationships:
        """Run the inference over the given AS paths.

        Paths may be :class:`ASPath` objects or plain AS-number sequences;
        prepending is collapsed before processing.  Paths with fewer than two
        distinct ASes contribute nothing.
        """
        return self.infer_weighted((path, 1) for path in paths)

    def infer_weighted(
        self, weighted_paths: Iterable[tuple[ASPath | Iterable[ASN], int]]
    ) -> InferredRelationships:
        """Run the inference over ``(path, multiplicity)`` pairs.

        Every phase of the algorithm is either set-valued (degrees,
        adjacency) or linear in path multiplicity (transit/ambiguous votes),
        so feeding each *distinct* path once with its occurrence count yields
        exactly the result of :meth:`infer` over the expanded collection —
        while doing the per-path top-provider scan only once per distinct
        path.  Callers holding columnar routing tables (interned path ids)
        should prefer this entry point.
        """
        counts = self._normalise(weighted_paths)
        if not counts:
            raise InferenceError("no usable AS paths supplied")
        degrees = self._compute_degrees(counts)
        transit_votes, ambiguous_votes, adjacency = self._vote(counts, degrees)
        graph = self._classify(degrees, transit_votes, ambiguous_votes, adjacency)
        return InferredRelationships(
            graph=graph,
            degrees=degrees,
            transit_votes=transit_votes,
            ambiguous_votes=ambiguous_votes,
        )

    # -- phases ----------------------------------------------------------------

    @staticmethod
    def _normalise(
        weighted_paths: Iterable[tuple[ASPath | Iterable[ASN], int]],
    ) -> Counter:
        counts: Counter = Counter()
        for path, weight in weighted_paths:
            if weight <= 0:
                continue
            as_path = path if isinstance(path, ASPath) else ASPath(path)
            collapsed = as_path.deduplicate().asns
            if len(collapsed) >= 2:
                counts[collapsed] += weight
        return counts

    @staticmethod
    def _compute_degrees(paths: Iterable[tuple[ASN, ...]]) -> dict[ASN, int]:
        neighbors: dict[ASN, set[ASN]] = {}
        for path in paths:
            for left, right in zip(path, path[1:]):
                neighbors.setdefault(left, set()).add(right)
                neighbors.setdefault(right, set()).add(left)
        return {asn: len(adjacent) for asn, adjacent in neighbors.items()}

    def _vote(
        self, counts: Counter, degrees: dict[ASN, int]
    ) -> tuple[Counter, Counter, set[frozenset[ASN]]]:
        transit_votes: Counter = Counter()
        ambiguous_votes: Counter = Counter()
        adjacency: set[frozenset[ASN]] = set()
        for path, weight in counts.items():
            top_index = max(range(len(path)), key=lambda i: degrees[path[i]])
            for index, (left, right) in enumerate(zip(path, path[1:])):
                adjacency.add(frozenset((left, right)))
                # The endpoint nearer the top provider is the provider.
                if index < top_index:
                    provider, customer = right, left
                else:
                    provider, customer = left, right
                if index == top_index - 1 or index == top_index:
                    ambiguous_votes[(provider, customer)] += weight
                else:
                    transit_votes[(provider, customer)] += weight
        return transit_votes, ambiguous_votes, adjacency

    def _classify(
        self,
        degrees: dict[ASN, int],
        transit_votes: Counter,
        ambiguous_votes: Counter,
        adjacency: set[frozenset[ASN]],
    ) -> AnnotatedASGraph:
        graph = AnnotatedASGraph()
        for asn in degrees:
            graph.add_as(asn)
        for edge in adjacency:
            left, right = sorted(edge)
            left_provides = transit_votes[(left, right)]
            right_provides = transit_votes[(right, left)]
            if left_provides and right_provides:
                if (
                    left_provides >= self.sibling_threshold
                    and right_provides >= self.sibling_threshold
                ):
                    graph.add_sibling(left, right)
                elif left_provides > right_provides:
                    graph.add_provider_customer(left, right)
                elif right_provides > left_provides:
                    graph.add_provider_customer(right, left)
                else:
                    graph.add_sibling(left, right)
                continue
            if left_provides:
                graph.add_provider_customer(left, right)
                continue
            if right_provides:
                graph.add_provider_customer(right, left)
                continue
            # Only ambiguous (top-adjacent) evidence: peer when degrees are
            # comparable, otherwise the larger AS is the provider.
            left_degree = max(degrees.get(left, 1), 1)
            right_degree = max(degrees.get(right, 1), 1)
            ratio = max(left_degree, right_degree) / min(left_degree, right_degree)
            if ratio <= self.peer_degree_ratio:
                graph.add_peer_peer(left, right)
            else:
                left_ambiguous = ambiguous_votes[(left, right)]
                right_ambiguous = ambiguous_votes[(right, left)]
                if left_ambiguous == right_ambiguous:
                    provider = left if left_degree >= right_degree else right
                else:
                    provider = left if left_ambiguous > right_ambiguous else right
                customer = right if provider == left else left
                graph.add_provider_customer(provider, customer)
        return graph
