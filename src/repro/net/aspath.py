"""The BGP AS_PATH attribute.

An :class:`ASPath` records the sequence of ASes a route announcement has
traversed, most recent first (the neighbor the route was learned from is the
first element, the origin AS is the last).  The paper's algorithms lean on
three operations implemented here:

* loop detection (a router discards routes whose AS path already contains its
  own AS number, Section 2.2.1),
* prepending (an export-policy knob for inbound traffic engineering,
  Section 2.2.2), and
* pairwise iteration over adjacent ASes (used when verifying customer paths
  in Section 5.1.3 and when inferring relationships from paths).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import ASPathError
from repro.net.asn import ASN, parse_asn


class ASPath:
    """An immutable AS_PATH (AS_SEQUENCE only, which is all the paper needs).

    Attributes are exposed read-only; all mutating operations return new
    instances, so paths can be shared freely between RIB entries.
    """

    __slots__ = ("_asns",)

    def __init__(self, asns: Iterable[ASN] = ()) -> None:
        asn_tuple = tuple(int(asn) for asn in asns)
        for asn in asn_tuple:
            if asn < 0:
                raise ASPathError(f"negative AS number in path: {asn}")
        object.__setattr__(self, "_asns", asn_tuple)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ASPath objects are immutable")

    def __copy__(self) -> "ASPath":
        return self

    def __deepcopy__(self, memo: dict) -> "ASPath":
        return self

    def __reduce__(self):
        return (ASPath, (self._asns,))

    # -- construction ----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a whitespace-separated AS path string such as ``"7018 1239 701"``."""
        text = text.strip()
        if not text:
            return cls()
        return cls(parse_asn(token) for token in text.split())

    @classmethod
    def origin_only(cls, origin: ASN) -> "ASPath":
        """Return the path of a locally originated route: just the origin AS."""
        return cls((origin,))

    # -- views -----------------------------------------------------------

    @property
    def asns(self) -> tuple[ASN, ...]:
        """The AS numbers, nearest neighbor first, origin last."""
        return self._asns

    @property
    def next_hop_as(self) -> ASN:
        """The AS the route was learned from (first element)."""
        if not self._asns:
            raise ASPathError("empty AS path has no next-hop AS")
        return self._asns[0]

    @property
    def origin_as(self) -> ASN:
        """The AS that originated the route (last element)."""
        if not self._asns:
            raise ASPathError("empty AS path has no origin AS")
        return self._asns[-1]

    @property
    def unique_length(self) -> int:
        """Path length counting each AS once (ignores prepending)."""
        return len(set(self._asns))

    def contains(self, asn: ASN) -> bool:
        """Return ``True`` if the AS appears anywhere in the path."""
        return asn in self._asns

    def has_loop_for(self, asn: ASN) -> bool:
        """Return ``True`` if accepting this path at ``asn`` would create a loop."""
        return self.contains(asn)

    def adjacencies(self) -> Iterator[tuple[ASN, ASN]]:
        """Yield each pair of adjacent ASes, deduplicating prepending.

        The pair order follows the path order: ``(nearer_to_receiver,
        nearer_to_origin)``.
        """
        deduplicated = self.deduplicate()._asns
        for left, right in zip(deduplicated, deduplicated[1:]):
            yield (left, right)

    def deduplicate(self) -> "ASPath":
        """Collapse consecutive repetitions (undo prepending)."""
        collapsed: list[ASN] = []
        for asn in self._asns:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return ASPath(collapsed)

    # -- operations -------------------------------------------------------

    @classmethod
    def _from_validated(cls, asns: tuple[ASN, ...]) -> "ASPath":
        """Internal fast path: build from an already-validated tuple."""
        path = cls.__new__(cls)
        object.__setattr__(path, "_asns", asns)
        return path

    def prepend(self, asn: ASN, count: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        if count < 1:
            raise ASPathError(f"prepend count must be positive, got {count}")
        if asn < 0:
            raise ASPathError(f"negative AS number in path: {asn}")
        return ASPath._from_validated((asn,) * count + self._asns)

    def strip_private(self) -> "ASPath":
        """Return a new path with private AS numbers removed (remove-private-AS)."""
        from repro.net.asn import is_private_asn

        return ASPath(asn for asn in self._asns if not is_private_asn(asn))

    def startswith(self, other: "ASPath" | Sequence[ASN]) -> bool:
        """Return ``True`` if this path begins with the given AS sequence."""
        other_asns = other.asns if isinstance(other, ASPath) else tuple(other)
        return self._asns[: len(other_asns)] == tuple(other_asns)

    # -- dunder -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._asns)

    def __getitem__(self, index: int) -> ASN:
        return self._asns[index]

    def __bool__(self) -> bool:
        return bool(self._asns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._asns == other._asns

    def __hash__(self) -> int:
        return hash(self._asns)

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self._asns)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"
