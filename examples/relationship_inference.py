#!/usr/bin/env python3
"""Infer AS relationships from routing tables and verify them with communities.

The paper's pipeline depends on inferred AS relationships (Gao's algorithm)
and bounds the inference error with BGP communities (Section 4.3, Appendix).
This example runs that loop on a synthetic Internet:

1. generate a ~200-AS Internet with ground-truth relationships,
2. propagate routes and collect AS paths at a RouteViews-style collector,
3. infer relationships from the paths with the Gao-style and the rank-based
   baselines, and measure their accuracy against the ground truth,
4. verify the inferred relationships of the community-tagging ASes the way
   the Appendix does, without looking at the ground truth.

Run with::

    python examples/relationship_inference.py
"""

from repro.core.community import CommunityAnalyzer
from repro.relationships.gao import GaoInference
from repro.relationships.sark import RankBasedInference
from repro.relationships.validation import compare_with_ground_truth
from repro.reporting.tables import ascii_table, format_percent
from repro.session import ObservationParameters, Study, StudyConfig
from repro.topology.generator import GeneratorParameters


def main() -> None:
    study = Study(
        StudyConfig(
            topology=GeneratorParameters(
                seed=404, tier1_count=5, tier2_count=12, tier3_count=25, stub_count=160
            ),
            observation=ObservationParameters(
                looking_glass_count=10, collector_vantage_count=16
            ),
        )
    )
    dataset = study.dataset()
    paths = dataset.collector.all_paths()
    print(
        f"Internet: {len(dataset.ground_truth_graph)} ASes, "
        f"{dataset.ground_truth_graph.edge_count()} edges; "
        f"collector paths: {len(paths)}"
    )

    rows = []
    for name, algorithm in (
        ("Gao (degree/top-provider)", GaoInference()),
        ("rank-based baseline", RankBasedInference()),
    ):
        inferred = algorithm.infer(paths)
        accuracy = compare_with_ground_truth(inferred.graph, dataset.ground_truth_graph)
        rows.append(
            [
                name,
                accuracy.total_edges,
                format_percent(100.0 * accuracy.accuracy),
                accuracy.missing_edges,
                accuracy.extra_edges,
            ]
        )
    print(ascii_table(
        ["algorithm", "edges compared", "accuracy", "missing edges", "extra edges"], rows
    ))
    print()

    # Community-based verification (no ground truth needed), as in Table 4.
    inferred_graph = GaoInference().infer(paths).graph
    analyzer = CommunityAnalyzer()
    rows = []
    for asn in dataset.looking_glass_ases:
        if dataset.assignment.policies[asn].community_plan is None:
            continue
        glass = dataset.looking_glass_of(asn)
        semantics = analyzer.infer_semantics(glass)
        verification = analyzer.verify_relationships(glass, semantics, inferred_graph)
        if verification.verifiable_neighbors == 0:
            continue
        rows.append(
            [
                f"AS{asn}",
                verification.neighbor_count,
                verification.verifiable_neighbors,
                format_percent(verification.percent_verified),
            ]
        )
    print("Community-based verification of the inferred relationships (Table 4 style):")
    print(ascii_table(["tagging AS", "neighbors", "verifiable", "% verified"], rows))


if __name__ == "__main__":
    main()
