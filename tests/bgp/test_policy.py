"""Unit tests for the route-map / prefix-list policy engine."""

from repro.bgp.attributes import Community, CommunitySet, WellKnownCommunity
from repro.bgp.policy import (
    AccessList,
    CommunityList,
    MatchCondition,
    PolicyAction,
    PrefixList,
    RouteMap,
    SetActions,
    community_tagging_route_map,
    deny_to_neighbor_route_map,
    match_all_route_map,
    per_prefix_route_map,
)
from repro.bgp.route import Route
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def route(prefix="10.1.1.0/24", path="65504 3 9", **kwargs):
    return Route(prefix=Prefix.parse(prefix), as_path=ASPath.parse(path), **kwargs)


class TestPrefixList:
    def test_exact_match_only_by_default(self):
        plist = PrefixList("p").permit("10.1.1.0/24")
        assert plist.permits(Prefix.parse("10.1.1.0/24"))
        assert not plist.permits(Prefix.parse("10.1.1.0/25"))
        assert not plist.permits(Prefix.parse("10.1.0.0/16"))

    def test_le_extends_to_more_specifics(self):
        plist = PrefixList("p").permit("10.0.0.0/8", le=24)
        assert plist.permits(Prefix.parse("10.1.0.0/16"))
        assert plist.permits(Prefix.parse("10.1.1.0/24"))
        assert not plist.permits(Prefix.parse("10.1.1.0/25"))

    def test_ge_requires_minimum_length(self):
        plist = PrefixList("p").permit("10.0.0.0/8", ge=16, le=24)
        assert not plist.permits(Prefix.parse("10.0.0.0/8"))
        assert plist.permits(Prefix.parse("10.2.0.0/16"))

    def test_first_match_wins_and_implicit_deny(self):
        plist = (
            PrefixList("p")
            .deny("10.1.1.0/24")
            .permit("10.0.0.0/8", le=32)
        )
        assert plist.evaluate(Prefix.parse("10.1.1.0/24")) is PolicyAction.DENY
        assert plist.permits(Prefix.parse("10.9.0.0/16"))
        assert plist.evaluate(Prefix.parse("11.0.0.0/8")) is PolicyAction.DENY


class TestAccessList:
    def test_match_everything_wildcard(self):
        acl = AccessList("1").permit("0.0.0.0", "255.255.255.255")
        assert acl.permits(Prefix.parse("10.1.1.0/24"))
        assert acl.permits(Prefix.parse("200.7.0.0/16"))

    def test_specific_network_wildcard(self):
        acl = AccessList("2").permit("10.1.0.0", "0.0.255.255")
        assert acl.permits(Prefix.parse("10.1.5.0/24"))
        assert not acl.permits(Prefix.parse("10.2.5.0/24"))

    def test_implicit_deny(self):
        acl = AccessList("3")
        assert not acl.permits(Prefix.parse("10.0.0.0/8"))

    def test_deny_entry(self):
        acl = AccessList("4").deny("10.1.0.0", "0.0.255.255").permit("0.0.0.0", "255.255.255.255")
        assert not acl.permits(Prefix.parse("10.1.0.0/16"))
        assert acl.permits(Prefix.parse("10.2.0.0/16"))


class TestCommunityList:
    def test_matches_any_listed_community(self):
        clist = CommunityList("c").add("12859:1000").add(Community(12859, 2000))
        assert clist.matches(CommunitySet(["12859:2000"]))
        assert not clist.matches(CommunitySet(["12859:4000"]))
        assert not clist.matches(CommunitySet())


class TestRouteMap:
    def test_unmatched_route_is_denied(self):
        rmap = RouteMap("m").permit(match=MatchCondition(next_hop_as=7018))
        assert rmap.apply(route(path="1239 9")) is None

    def test_deny_clause(self):
        rmap = RouteMap("m").deny(match=MatchCondition(next_hop_as=1239))
        assert rmap.apply(route(path="1239 9")) is None

    def test_set_local_pref(self):
        rmap = match_all_route_map("isp1", local_pref=90)
        result = rmap.apply(route())
        assert result is not None
        assert result.local_pref == 90

    def test_clause_ordering_by_sequence(self):
        rmap = RouteMap("m")
        rmap.permit(sequence=20, set_actions=SetActions(local_pref=50))
        rmap.permit(
            sequence=10,
            match=MatchCondition(prefix_list=PrefixList("x").permit("10.1.1.0/24")),
            set_actions=SetActions(local_pref=200),
        )
        matched = rmap.apply(route(prefix="10.1.1.0/24"))
        assert matched.local_pref == 200
        fallthrough = rmap.apply(route(prefix="10.2.0.0/16"))
        assert fallthrough.local_pref == 50

    def test_match_next_hop_as(self):
        rmap = RouteMap("m").permit(
            match=MatchCondition(next_hop_as=65504),
            set_actions=SetActions(local_pref=90),
        )
        assert rmap.apply(route(path="65504 9")).local_pref == 90
        assert rmap.apply(route(path="65505 9")) is None

    def test_match_as_path_contains_and_origin(self):
        rmap = RouteMap("m").permit(
            match=MatchCondition(as_path_contains=3, origin_as=9),
        )
        assert rmap.apply(route(path="65504 3 9")) is not None
        assert rmap.apply(route(path="65504 4 9")) is None
        assert rmap.apply(route(path="65504 3 8")) is None

    def test_set_med_prepend_and_communities(self):
        rmap = RouteMap("m").permit(
            set_actions=SetActions(
                med=50,
                prepend=(65503, 2),
                add_communities=(Community.parse("65503:100"), WellKnownCommunity.NO_EXPORT),
            )
        )
        result = rmap.apply(route(path="65504 9"))
        assert result.med == 50
        assert result.as_path.asns[:2] == (65503, 65503)
        assert result.communities.has("65503:100")
        assert result.communities.no_export

    def test_delete_communities(self):
        rmap = RouteMap("m").permit(
            set_actions=SetActions(delete_communities=(Community.parse("1:1"),))
        )
        tagged = route(communities=CommunitySet(["1:1", "2:2"]))
        result = rmap.apply(tagged)
        assert not result.communities.has("1:1")
        assert result.communities.has("2:2")

    def test_apply_all_filters_denied(self):
        rmap = RouteMap("m").permit(match=MatchCondition(next_hop_as=1))
        routes = [route(path="1 9"), route(path="2 9")]
        assert len(rmap.apply_all(routes)) == 1


class TestBuilders:
    def test_per_prefix_route_map(self):
        rmap = per_prefix_route_map(
            "isp1", [("10.1.1.0/24", 80)], default_pref=100
        )
        assert rmap.apply(route(prefix="10.1.1.0/24")).local_pref == 80
        assert rmap.apply(route(prefix="10.2.0.0/16")).local_pref == 100

    def test_per_prefix_route_map_without_default_denies_rest(self):
        rmap = per_prefix_route_map("isp1", [("10.1.1.0/24", 80)])
        assert rmap.apply(route(prefix="10.2.0.0/16")) is None

    def test_deny_to_neighbor_route_map(self):
        rmap = deny_to_neighbor_route_map("export-to-B", ["10.5.0.0/16"])
        assert rmap.apply(route(prefix="10.5.0.0/16")) is None
        assert rmap.apply(route(prefix="10.6.0.0/16")) is not None

    def test_community_tagging_route_map(self):
        rmap = community_tagging_route_map("tag-peer", "12859:1000")
        result = rmap.apply(route())
        assert result.communities.has("12859:1000")
