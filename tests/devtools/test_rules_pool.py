"""POOL family: unpicklable submissions and stale worker-state reads."""

import pathlib

from repro.devtools.engine import LintContext, ModuleUnderLint, get_rule, lint_module

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestDirtyFixture:
    def test_unpicklable_submissions(self, lint_fixture):
        findings = lint_fixture("pool_dirty.py", rules=("POOL001",))
        messages = "\n".join(finding.message for finding in findings)
        assert len(findings) == 3
        assert "lambda submitted" in messages
        assert "locally defined function 'local'" in messages
        assert "bound method 'helper.compute'" in messages

    def test_worker_reading_module_mutable_state(self, lint_fixture):
        findings = lint_fixture("pool_dirty.py", rules=("POOL002",))
        (finding,) = findings
        assert "_worker" in finding.message
        assert "_RESULTS" in finding.message


class TestCleanFixture:
    def test_partial_of_module_function_is_fine(self, lint_fixture):
        assert lint_fixture("pool_clean.py") == []

    def test_thread_pools_are_exempt(self, lint_source):
        findings = lint_source(
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run(cases):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda c: c, cases))\n"
        )
        assert findings == []

    def test_initializer_global_write_is_not_a_read(self, lint_source):
        # The initializer *writes* the global; only reads in workers fire.
        findings = lint_source(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_STATE = None\n"
            "def _init(payload):\n"
            "    global _STATE\n"
            "    _STATE = payload\n"
            "def submit(cases, payload):\n"
            "    with ProcessPoolExecutor(initializer=_init, initargs=(payload,)) as pool:\n"
            "        return list(pool.map(len, cases))\n"
        )
        assert findings == []

    def test_attach_cache_memo_is_sanctioned(self, lint_source):
        # AttachCache entries derive purely from task arguments, so the
        # per-process-copy hazard cannot occur: reading one in a worker is
        # the sanctioned pattern, not a finding.
        findings = lint_source(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.simulation.fastpath.shm import AttachCache, attach\n"
            "_CORES = AttachCache(lambda key: attach(key))\n"
            "def _worker(descriptor, start, stop):\n"
            "    return _CORES.get(descriptor)\n"
            "def fan_out(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_worker, *task) for task in tasks]\n"
        )
        assert findings == []

    def test_attach_cache_global_rebind_is_sanctioned(self, lint_source):
        # Even the initializer-rebind spelling stays exempt: the rebound
        # value is still a pure-function-of-key memo.
        findings = lint_source(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.simulation.fastpath.shm import AttachCache, attach\n"
            "_CORES = AttachCache(attach)\n"
            "def _init():\n"
            "    global _CORES\n"
            "    _CORES = AttachCache(attach)\n"
            "def _worker(descriptor):\n"
            "    return _CORES.get(descriptor)\n"
            "def fan_out(tasks):\n"
            "    with ProcessPoolExecutor(initializer=_init) as pool:\n"
            "        return [pool.submit(_worker, task) for task in tasks]\n"
        )
        assert findings == []

    def test_plain_dict_worker_memo_still_fires(self, lint_source):
        # The unsanctioned spelling of the same memo remains a finding.
        findings = lint_source(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_CORES = {}\n"
            "def _worker(descriptor):\n"
            "    return _CORES.setdefault(descriptor, object())\n"
            "def fan_out(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_worker, task) for task in tasks]\n"
        )
        assert len(findings) == 1
        assert "_CORES" in findings[0].message
        assert "_worker" in findings[0].message


class TestRealModules:
    def test_fastpath_worker_needs_no_suppression(self):
        # The zero-copy attach path replaced the initializer-owned
        # _WORKER_CORE global (and its inline POOL002 rationale) with a
        # sanctioned AttachCache: the engine lints clean with no
        # suppressions left in the file.
        path = REPO_ROOT / "src/repro/simulation/fastpath/engine.py"
        module = ModuleUnderLint.parse(
            "src/repro/simulation/fastpath/engine.py", path.read_text()
        )
        context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
        findings = lint_module(module, context, rules=[get_rule("POOL002")])
        assert findings == []
        assert not [s for s in module.suppressions if "POOL002" in s.rules]
        assert "AttachCache" in path.read_text()

    def test_sweep_and_fuzz_pools_are_clean(self):
        context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
        rules = [get_rule("POOL001"), get_rule("POOL002")]
        for relative in ("src/repro/session/sweep.py", "src/repro/fuzz/harness.py"):
            module = ModuleUnderLint.parse(
                relative, (REPO_ROOT / relative).read_text()
            )
            assert lint_module(module, context, rules=rules) == [], relative
