"""Unit tests for tier classification."""

from repro.topology.graph import AnnotatedASGraph
from repro.topology.hierarchy import classify_tiers


def small_hierarchy():
    """Two Tier-1s peering, each with a Tier-2 customer, and stubs below."""
    return AnnotatedASGraph.from_edges(
        provider_customer=[(1, 10), (2, 20), (10, 100), (20, 200), (10, 20)],
        peer_peer=[(1, 2)],
    )


class TestClassifyTiers:
    def test_tier1_is_provider_free(self):
        classification = classify_tiers(small_hierarchy())
        assert classification.tier1 == {1, 2}
        assert classification.tier_of(1) == 1

    def test_descending_levels(self):
        classification = classify_tiers(small_hierarchy())
        assert classification.tier_of(10) == 2
        assert classification.tier_of(100) == 3
        # AS20 is both a customer of AS2 (tier 2) and of AS10 (tier 3 path);
        # the minimum (closest to the core) wins.
        assert classification.tier_of(20) == 2

    def test_stubs_identified(self):
        classification = classify_tiers(small_hierarchy())
        assert 100 in classification.stubs
        assert 200 in classification.stubs
        assert 10 not in classification.stubs

    def test_all_ases_are_classified(self):
        graph = small_hierarchy()
        classification = classify_tiers(graph)
        assert set(classification.tiers) == set(graph.ases())

    def test_isolated_as_goes_to_deepest_tier(self):
        graph = small_hierarchy()
        graph.add_as(999)
        classification = classify_tiers(graph, max_tier=5)
        assert classification.tier_of(999) == 5

    def test_max_tier_caps_depth(self):
        chain = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
            peer_peer=[(1, 8)],
        )
        classification = classify_tiers(chain, max_tier=3)
        assert classification.depth == 3
        assert classification.tier_of(7) == 3

    def test_ases_in_tier(self):
        classification = classify_tiers(small_hierarchy())
        assert classification.ases_in_tier(1) == [1, 2]
        assert classification.ases_in_tier(3) == [100, 200]

    def test_empty_graph(self):
        classification = classify_tiers(AnnotatedASGraph())
        assert classification.tiers == {}
        assert classification.depth == 0
