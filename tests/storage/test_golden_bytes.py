"""Golden byte-identity: codecs serialize identically across interpreters.

Two fresh Python processes, launched with *different* randomized
``PYTHONHASHSEED`` values, build the same tiny study and print the SHA-256
of every stage's encoded artifact.  The digests must match exactly — the
property that makes the shared disk tier trustworthy across processes,
machines in a fleet, and the sweep orchestrator's byte-identical reports.
"""

import os
import pathlib
import subprocess
import sys

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

_SCRIPT = """
import hashlib
from repro.session.cache import StageCache, fingerprint
from repro.session.stages import ObservationParameters, Stage, StudyConfig
from repro.session.study import Study
from repro.storage.codecs import codec_for
from repro.topology.generator import GeneratorParameters

config = StudyConfig(
    topology=GeneratorParameters(
        seed=3, tier1_count=3, tier2_count=4, tier3_count=6, stub_count=25
    ),
    observation=ObservationParameters(
        looking_glass_count=4, tier1_looking_glass_count=2,
        collector_vantage_count=6,
    ),
)
study = Study(config, cache=StageCache())
artifacts = {
    "topology": study.topology(),
    "policies": study.policies(),
    "propagation": study.propagation(),
    "observation": study.observation(),
    "irr": study.irr(),
    "analysis": study.analysis(),
}
for stage in Stage:
    data = codec_for(stage.value).encode(artifacts[stage.value])
    print(stage.value, hashlib.sha256(data).hexdigest())
    print(stage.value + "-key", study.stage_key(stage))
print("config-fingerprint", fingerprint(config))
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_DIR", None)
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_encoded_artifacts_byte_identical_across_interpreters():
    first = _run("1")
    second = _run("4242")
    assert first == second
    # Sanity: every stage produced a digest line plus a key line.
    assert len(first.strip().splitlines()) == 13
