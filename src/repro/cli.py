"""Command-line interface of the repro package.

Usage::

    python -m repro run                          # every experiment, standard scenario
    python -m repro run table5 fig2 --scenario small
    python -m repro run --scenario large --workers 4 --json
    python -m repro run --scenario multihoming@7 # one scenario-family sample
    python -m repro run table5 --seed 42 --output-dir out/
    python -m repro run --engine legacy          # original propagation engine
    python -m repro run --propagation-workers 4  # shard prefix propagation
    python -m repro list                         # experiment ids + required stages
    python -m repro scenarios                    # scenario presets + families
    python -m repro scenarios --json             # the same, machine-readable
    python -m repro index --scenario small       # compile + size the measurement index
    python -m repro fuzz --family peering-density --count 25 --seed 7
    python -m repro fuzz --count 5 --workers 4   # every family, 5 cases each

``python -m repro.experiments`` remains as a thin compatibility shim over
``python -m repro run``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.exceptions import ReproError
from repro.session.scenarios import all_families, all_scenarios, resolve_scenario
from repro.session.stages import PropagationSettings
from repro.session.suite import SuiteReport, run_suite


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of Wang & Gao (IMC 2003).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run experiments against a scenario")
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help="experiment identifiers to run (default: all)",
    )
    run.add_argument(
        "--scenario",
        default="standard",
        help="scenario preset or family sample ('family@seed') to run against "
        "(see 'scenarios'; default: standard)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="derive every stage seed from this value (default: the scenario's seeds)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread-pool size for independent experiments (default: 1)",
    )
    run.add_argument(
        "--engine",
        choices=("fast", "legacy"),
        default="fast",
        help="propagation engine: the compiled fast engine (default) or the "
        "legacy message-object engine (both produce identical results)",
    )
    run.add_argument(
        "--propagation-workers",
        type=int,
        default=1,
        metavar="N",
        help="shard prefix propagation over N worker processes (fast engine "
        "only; default: 1)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the structured SuiteReport as JSON instead of ASCII tables",
    )
    run.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also write per-experiment .txt tables and suite.json to this directory",
    )

    commands.add_parser("list", help="list experiment identifiers and required stages")

    scenarios = commands.add_parser(
        "scenarios", help="list scenario presets and scenario families"
    )
    scenarios.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the presets and families as JSON instead of aligned text",
    )

    index = commands.add_parser(
        "index",
        help="compile a scenario's measurement index and print its size counters",
    )
    index.add_argument(
        "--scenario",
        default="standard",
        help="scenario preset or family sample ('family@seed') to compile "
        "(default: standard)",
    )
    index.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the counters as JSON instead of aligned text",
    )

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzz: sample scenario families, run fast-vs-legacy "
        "propagation and indexed-vs-legacy analysis, check paper invariants",
    )
    fuzz.add_argument(
        "--family",
        action="append",
        dest="families",
        metavar="NAME",
        help="scenario family to sample (repeatable; default: every family)",
    )
    fuzz.add_argument(
        "--count",
        type=int,
        default=5,
        help="cases per family; case i uses seed SEED+i (default: 5)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=7,
        help="base case seed (default: 7)",
    )
    fuzz.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for independent cases (default: 1)",
    )
    fuzz.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the structured FuzzReport as JSON instead of the summary",
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    settings = PropagationSettings(
        engine=args.engine, workers=args.propagation_workers
    )
    settings.validate()
    study = resolve_scenario(args.scenario).study(propagation=settings)
    if args.seed is not None:
        study = study.seeded(args.seed)
    report = run_suite(
        study,
        args.experiments or None,
        workers=args.workers,
        scenario=args.scenario,
    )
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())
    if args.output_dir is not None:
        _write_outputs(report, args.output_dir)
    return 0


def _write_outputs(report: SuiteReport, output_dir: pathlib.Path) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    for experiment in report.experiments:
        path = output_dir / f"{experiment.experiment_id}.txt"
        path.write_text(experiment.render() + "\n")
    (output_dir / "suite.json").write_text(report.to_json() + "\n")
    print(f"wrote {len(report.experiments)} tables + suite.json to {output_dir}/",
          file=sys.stderr)


def _command_index(args: argparse.Namespace) -> int:
    import json
    import time

    study = resolve_scenario(args.scenario).study()
    started = time.perf_counter()
    engine = study.analysis()
    build_seconds = time.perf_counter() - started
    stats = engine.index.stats()
    if args.as_json:
        print(json.dumps({**stats, "build_seconds": round(build_seconds, 4)}, indent=2))
        return 0
    print(f"measurement index of scenario {args.scenario!r} "
          f"(built in {build_seconds:.2f}s incl. upstream stages):")
    width = max(len(name) for name in stats)
    for name, value in stats.items():
        print(f"  {name:{width}s} {value}")
    return 0


def _command_list() -> int:
    from repro.experiments.registry import all_experiments

    for experiment in all_experiments():
        stages = ",".join(sorted(stage.value for stage in experiment.requires)) or "-"
        print(f"{experiment.experiment_id:10s} [{stages}] {experiment.title}")
    return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    import json

    scenarios = all_scenarios()
    families = all_families()
    if args.as_json:
        print(
            json.dumps(
                {
                    "scenarios": [
                        {"name": scenario.name, "description": scenario.description}
                        for scenario in scenarios
                    ],
                    "families": [
                        {
                            "name": family.name,
                            "description": family.description,
                            "parameter": family.parameter,
                        }
                        for family in families
                    ],
                },
                indent=2,
            )
        )
        return 0
    print("scenario presets:")
    for scenario in scenarios:
        print(f"  {scenario.name:20s} {scenario.description}")
    print()
    print("scenario families (sample with --scenario NAME@SEED or 'fuzz --family'):")
    for family in families:
        print(f"  {family.name:20s} {family.description}")
        print(f"  {'':20s}   {family.parameter}")
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_fuzz

    report = run_fuzz(
        args.families,
        count=args.count,
        seed=args.seed,
        workers=args.workers,
    )
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "list":
            return _command_list()
        if args.command == "index":
            return _command_index(args)
        if args.command == "fuzz":
            return _command_fuzz(args)
        return _command_scenarios(args)
    except BrokenPipeError:  # e.g. `python -m repro run | head`
        return 0
    except ReproError as error:  # unknown scenario/experiment, bad workers, ...
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
