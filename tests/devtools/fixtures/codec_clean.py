"""Fixture: a codec module that covers every field it serializes."""
from dataclasses import dataclass


class StageCodec:
    pass


@dataclass
class Payload:
    left: int
    right: int


class PayloadCodec(StageCodec):
    def lower(self, payload: Payload):
        return (payload.left, payload.right)

    def raise_(self, tree):
        left, right = tree
        return Payload(left=left, right=right)
