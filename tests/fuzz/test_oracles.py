"""Oracle tests: a shared positive case plus deliberately injected defects.

The negative tests are the harness's own regression suite: each one forges
an artifact that violates a paper invariant and asserts the matching oracle
actually catches it — a fuzz harness whose oracles cannot fail would
silently pass on anything.
"""

import pytest

from repro.bgp.rib import LocRib
from repro.bgp.route import Route
from repro.core.atoms import PolicyAtom
from repro.fuzz import ORACLES, OracleViolation, build_context
from repro.fuzz.oracles import (
    check_atom_refinement,
    check_valley_free,
    valley_violations,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


@pytest.fixture(scope="module")
def context():
    """One real sampled case every oracle is exercised against."""
    return build_context("multihoming", 1)


def test_every_oracle_passes_on_a_real_sample(context):
    for name, oracle in ORACLES:
        oracle(context)  # raises OracleViolation on failure


class _TamperedResult:
    """A propagation result with one observed table swapped out."""

    def __init__(self, base, asn, table):
        self._base = base
        self._asn = asn
        self._table = table

    @property
    def observed_ases(self):
        return self._base.observed_ases

    def table_of(self, asn):
        if asn == self._asn:
            return self._table
        return self._base.table_of(asn)


def _forged_table(context, as_path):
    """A one-route table at a Tier-1 holding a route with the given path."""
    victim = context.dataset.internet.tier1[0]
    table = LocRib(owner=victim)
    table.add_route(
        Route(prefix=Prefix.parse("203.0.113.0/24"), as_path=ASPath(as_path))
    )
    return victim, table


def _valley_path(context):
    """A down-then-up path ``[customer, customer's other provider]``."""
    graph = context.graph
    victim = context.dataset.internet.tier1[0]
    for customer in graph.customers_of(victim):
        for provider in graph.providers_of(customer):
            if provider != victim:
                return [customer, provider]
    pytest.skip("sample has no multihomed customer under the first Tier-1")


class TestValleyOracle:
    def test_injected_valley_is_caught(self, context):
        victim, table = _forged_table(context, _valley_path(context))
        tampered = _TamperedResult(context.fast_result, victim, table)
        with pytest.raises(OracleViolation, match="valley path") as excinfo:
            check_valley_free(context.graph, tampered)
        assert excinfo.value.oracle == "valley-free"

    def test_injected_loop_is_caught(self, context):
        customer, provider = _valley_path(context)
        victim, table = _forged_table(context, [customer, provider, customer])
        tampered = _TamperedResult(context.fast_result, victim, table)
        with pytest.raises(OracleViolation, match="looping path"):
            check_valley_free(context.graph, tampered)

    def test_valley_violations_lists_the_offending_route(self, context):
        victim, table = _forged_table(context, _valley_path(context))
        tampered = _TamperedResult(context.fast_result, victim, table)
        violations = valley_violations(context.graph, tampered)
        assert violations and f"AS{victim}" in violations[0]

    def test_untampered_result_is_clean(self, context):
        assert valley_violations(context.graph, context.fast_result) == []


class _FakeAtomEngine:
    """An engine stub returning a hand-built atom decomposition."""

    def __init__(self, atoms):
        self._atoms = atoms

    def atoms(self):
        return self._atoms


class TestAtomOracle:
    def test_straddling_atom_is_caught(self, context):
        collector = context.dataset.collector
        # Two prefixes that genuinely differ in some vantage's next hop.
        by_prefix = {}
        for entry in collector.entries:
            first_hop = entry.as_path.next_hop_as if len(entry.as_path) else None
            by_prefix.setdefault(entry.prefix, {})[entry.vantage] = first_hop
        groups = {}
        for prefix, vector in by_prefix.items():
            groups.setdefault(tuple(sorted(vector.items())), []).append(prefix)
        assert len(groups) > 1, "sample too degenerate for this test"
        (first, *_), (second, *_) = list(groups.values())[:2]
        remaining = [p for p in by_prefix if p not in (first, second)]
        forged = [
            PolicyAtom(signature=(), prefixes=[first, second]),
            PolicyAtom(signature=(), prefixes=remaining),
        ]
        with pytest.raises(OracleViolation, match="straddles"):
            check_atom_refinement(_FakeAtomEngine(forged), collector)

    def test_missing_prefix_is_caught(self, context):
        collector = context.dataset.collector
        real_atoms = context.engine.atoms()
        with pytest.raises(OracleViolation, match="not a partition"):
            check_atom_refinement(_FakeAtomEngine(real_atoms[:-1]), collector)
