"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper against the
standard scenario's dataset (built once per session through the session
layer's stage cache), prints the reproduced rows so they can be read next to
the paper, and records the wall-clock cost of the analysis itself (dataset
construction is benchmarked separately in ``test_bench_pipeline.py``).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data.dataset import StudyDataset
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import experiment_class
from repro.session import StageView, get_scenario

#: Where each benchmark writes the reproduced table for later inspection.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def dataset() -> StudyDataset:
    """The standard study dataset, built once per benchmark session."""
    return get_scenario("standard").study().dataset()


@pytest.fixture(scope="session")
def run_experiment(dataset):
    """Return a helper that benchmarks one experiment and prints its table."""

    def runner(benchmark, experiment_id: str) -> ExperimentResult:
        cls = experiment_class(experiment_id)
        experiment = cls()
        view = StageView(dataset, cls.requires)
        result = benchmark.pedantic(
            experiment.run, args=(view,), rounds=1, iterations=1, warmup_rounds=0
        )
        rendered = result.render()
        print()
        print(rendered)
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")
        return result

    return runner
