"""The compiled measurement index: observation artifacts as columnar arrays.

The paper's analyses (Tables 2-11, Figs. 2-9) are repeated scans over the
same three observed artifacts — the RouteViews-style collector table, the
Looking Glass views and the IRR database — sliced per AS, per prefix and per
neighbor.  The legacy :mod:`repro.core` analyzers re-walk the Python object
graph (``CollectorTable`` entries, ``LocRib`` tries, ``Route`` dataclasses)
once per analysis, which makes the analyzer pass the dominant wall-clock
cost once propagation itself is fast.

:class:`MeasurementIndex` lowers the observation stage *once* into dense
columns keyed by interned integer ids:

* **Interners** — every :class:`~repro.net.prefix.Prefix` and
  :class:`~repro.net.aspath.ASPath` is assigned a small integer id; path ids
  come with a precomputed collapsed (deduplicated) AS tuple and origin AS.
* **Collector columns** — one row per collector entry, in entry order:
  ``(vantage, prefix id, path id)`` plus inverted groupings by prefix and by
  path member AS, and the observed adjacency set (consecutive AS pairs).
* **Looking Glass columns** — per glass, one row per candidate route in
  table-iteration order: next-hop AS, LOCAL_PREF, locality, and the glass's
  own community tags, plus per-entry offsets and best-route columns.
* **Table columns** — per observed AS, the best-route rows (prefix id,
  origin, next hop, locality, the route object) in table order.
* **IRR rows** — per registered object: AS, last-update stamp and the
  ``(peer AS, pref)`` import pairs.

The index holds references to the source artifacts (graph, collector,
tables) so engine queries that need exact legacy semantics — radix-trie
covering/covered walks, route object identity in reports — can reach them,
but every hot loop in :class:`~repro.analysis.engine.AnalysisEngine` runs
over the integer columns.  Build it with :meth:`MeasurementIndex.from_dataset`
or through the session layer's ``ANALYSIS`` stage.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bgp.attributes import Community
    from repro.bgp.route import Route
    from repro.data.dataset import StudyDataset


@dataclass
class GlassIndex:
    """Columnar view of one Looking Glass table.

    Route rows follow the exact iteration order of the legacy analyzers
    (``for entry in table.entries(): for route in entry.routes``), so
    one-pass queries reproduce legacy tie-breaking (e.g. ``Counter``
    insertion order) bit for bit.

    Attributes:
        asn: the Looking Glass AS.
        entry_prefix: prefix id per RIB entry, in table-iteration order.
        entry_offsets: per entry, the start offset into the route columns;
            one trailing sentinel equal to the route-row count.
        route_next_hop: next-hop AS per candidate route row.
        route_local_pref: LOCAL_PREF per candidate route row.
        route_is_local: 1 for locally-originated route rows, else 0.
        route_own_communities: the glass AS's own community tags per route
            row, in the route's set-iteration order.
        best_next_hop: next-hop AS per best route, in best-route order.
        best_local_pref: LOCAL_PREF per best route.
        best_is_local: 1 for locally-originated best routes, else 0.
    """

    asn: ASN
    entry_prefix: array = field(default_factory=lambda: array("q"))
    entry_offsets: array = field(default_factory=lambda: array("q"))
    route_next_hop: array = field(default_factory=lambda: array("q"))
    route_local_pref: array = field(default_factory=lambda: array("q"))
    route_is_local: bytearray = field(default_factory=bytearray)
    route_own_communities: list[tuple["Community", ...]] = field(default_factory=list)
    best_next_hop: array = field(default_factory=lambda: array("q"))
    best_local_pref: array = field(default_factory=lambda: array("q"))
    best_is_local: bytearray = field(default_factory=bytearray)

    @property
    def entry_count(self) -> int:
        """Number of RIB entries (prefixes) in the table."""
        return len(self.entry_prefix)

    @property
    def route_count(self) -> int:
        """Number of candidate route rows in the table."""
        return len(self.route_next_hop)


@dataclass
class TableIndex:
    """Columnar best-route view of one observed AS's routing table.

    Attributes:
        owner: the table's AS.
        best_prefix: prefix id per best route, in table-iteration order.
        best_origin: origin AS per best route.
        best_next_hop: next-hop AS per best route.
        best_is_local: 1 for locally-originated best routes, else 0.
        best_route: the selected :class:`~repro.bgp.route.Route` objects
            (kept so reports carry the same objects the legacy analyzers do).
        row_of_prefix: prefix id → row index into the best-route columns.
    """

    owner: ASN
    best_prefix: array = field(default_factory=lambda: array("q"))
    best_origin: array = field(default_factory=lambda: array("q"))
    best_next_hop: array = field(default_factory=lambda: array("q"))
    best_is_local: bytearray = field(default_factory=bytearray)
    best_route: list["Route"] = field(default_factory=list)
    row_of_prefix: dict[int, int] = field(default_factory=dict)

    @property
    def best_count(self) -> int:
        """Number of best-route rows."""
        return len(self.best_prefix)


@dataclass
class IrrRow:
    """One IRR aut-num object lowered to plain tuples.

    Attributes:
        asn: the registered AS.
        last_updated: the object's ``changed:`` date stamp.
        imports: ``(peer AS, RPSL pref or None)`` per import line, in line
            order.
    """

    asn: ASN
    last_updated: str
    imports: tuple[tuple[ASN, int | None], ...]


class MeasurementIndex:
    """The compiled, shared index over one study's observation artifacts.

    Build once per dataset (the session layer's ``ANALYSIS`` stage caches
    it), query many times through
    :class:`~repro.analysis.engine.AnalysisEngine`.
    """

    def __init__(self, dataset: "StudyDataset") -> None:
        """Lower a study dataset's observation artifacts into columns.

        Args:
            dataset: the assembled study dataset (flat view); the index
                keeps references to its graph, collector, tables and IRR.
        """
        self._attach(dataset)
        self._build_collector()
        self._build_glasses()
        self._build_tables()
        self._build_irr()

    def _attach(self, dataset: "StudyDataset") -> None:
        """Bind the source references and initialise empty columns."""
        self.dataset = dataset
        self.graph = dataset.ground_truth_graph
        self.internet = dataset.internet
        self.collector = dataset.collector
        self.looking_glasses = dict(dataset.looking_glasses)
        self.result = dataset.result
        self.assignment = dataset.assignment
        self.irr = dataset.irr
        self.looking_glass_ases = list(dataset.looking_glass_ases)
        self.vantage_ases = list(dataset.vantage_ases)

        # -- interners -------------------------------------------------------
        self.prefixes: list[Prefix] = []
        self.prefix_ids: dict[Prefix, int] = {}
        self.paths: list[ASPath] = []
        self.path_ids: dict[ASPath, int] = {}
        self.collapsed: list[tuple[ASN, ...]] = []
        self.path_origin: array = array("q")

        # -- collector columns ----------------------------------------------
        self.col_vantage: array = array("q")
        self.col_prefix: array = array("q")
        self.col_path: array = array("q")
        self.rows_by_prefix: dict[int, list[int]] = {}
        self.rows_by_member: dict[ASN, list[int]] = {}
        self.adjacency: set[tuple[ASN, ASN]] = set()

        # -- per-source views -----------------------------------------------
        self.glasses: dict[ASN, GlassIndex] = {}
        self.tables: dict[ASN, TableIndex] = {}
        self.irr_rows: list[IrrRow] = []

    @classmethod
    def hollow(cls, dataset: "StudyDataset") -> "MeasurementIndex":
        """An index bound to ``dataset`` with empty columns, builders not run.

        Entry point of the analysis storage codec
        (:mod:`repro.storage.codecs`): the codec restores the interners and
        columns it persisted, then re-runs only the cheap builders that
        reference live objects (:meth:`_build_tables`, :meth:`_build_irr`).

        Args:
            dataset: the assembled study dataset to bind references to.

        Returns:
            The hollow index (source references set, every column empty).
        """
        index = cls.__new__(cls)
        index._attach(dataset)
        return index

    # -- interning -----------------------------------------------------------

    def intern_prefix(self, prefix: Prefix) -> int:
        """Return the (possibly new) integer id of a prefix."""
        pid = self.prefix_ids.get(prefix)
        if pid is None:
            pid = len(self.prefixes)
            self.prefix_ids[prefix] = pid
            self.prefixes.append(prefix)
        return pid

    def intern_path(self, path: ASPath) -> int:
        """Return the (possibly new) integer id of an AS path.

        Interning also precomputes the collapsed (deduplicated) AS tuple and
        the origin AS, the two derived forms every path-walking analysis
        consumes.
        """
        path_id = self.path_ids.get(path)
        if path_id is None:
            path_id = len(self.paths)
            self.path_ids[path] = path_id
            self.paths.append(path)
            self.collapsed.append(path.deduplicate().asns)
            self.path_origin.append(path.origin_as)
        return path_id

    def prefix_id(self, prefix: Prefix) -> int | None:
        """The id of a prefix, or ``None`` if it was never observed."""
        return self.prefix_ids.get(prefix)

    # -- builders ------------------------------------------------------------

    def _build_collector(self) -> None:
        """Lower the collector table: columns, groupings, adjacency."""
        for row, entry in enumerate(self.collector.entries):
            pid = self.intern_prefix(entry.prefix)
            path_id = self.intern_path(entry.as_path)
            self.col_vantage.append(entry.vantage)
            self.col_prefix.append(pid)
            self.col_path.append(path_id)
            self.rows_by_prefix.setdefault(pid, []).append(row)
            collapsed = self.collapsed[path_id]
            for asn in sorted(set(collapsed)):
                self.rows_by_member.setdefault(asn, []).append(row)
            self.adjacency.update(zip(collapsed, collapsed[1:]))

    def _build_glasses(self) -> None:
        """Lower every Looking Glass table into route/entry/best columns."""
        for asn in self.looking_glass_ases:
            glass = self.looking_glasses[asn]
            view = GlassIndex(asn=asn)
            for entry in glass.table.entries():
                view.entry_prefix.append(self.intern_prefix(entry.prefix))
                view.entry_offsets.append(len(view.route_next_hop))
                for route in entry.routes:
                    view.route_next_hop.append(route.next_hop_as)
                    view.route_local_pref.append(route.local_pref)
                    view.route_is_local.append(1 if route.is_local else 0)
                    view.route_own_communities.append(
                        tuple(route.communities.from_asn(asn))
                    )
                best = entry.best
                if best is not None:
                    view.best_next_hop.append(best.next_hop_as)
                    view.best_local_pref.append(best.local_pref)
                    view.best_is_local.append(1 if best.is_local else 0)
            view.entry_offsets.append(len(view.route_next_hop))
            self.glasses[asn] = view

    def _build_tables(self) -> None:
        """Lower the best routes of every observed AS's routing table."""
        for asn in self.result.observed_ases:
            table = self.result.table_of(asn)
            view = TableIndex(owner=asn)
            for route in table.best_routes():
                pid = self.intern_prefix(route.prefix)
                view.row_of_prefix[pid] = len(view.best_prefix)
                view.best_prefix.append(pid)
                view.best_origin.append(route.origin_as)
                view.best_next_hop.append(route.next_hop_as)
                view.best_is_local.append(1 if route.is_local else 0)
                view.best_route.append(route)
            self.tables[asn] = view

    def _build_irr(self) -> None:
        """Lower the IRR database into plain ``(peer, pref)`` rows."""
        for obj in self.irr:
            self.irr_rows.append(
                IrrRow(
                    asn=obj.asn,
                    last_updated=obj.last_updated,
                    imports=tuple((line.peer_as, line.pref) for line in obj.imports),
                )
            )

    # -- conveniences --------------------------------------------------------

    def table_of(self, asn: ASN) -> TableIndex:
        """The best-route columns of one observed AS.

        Raises:
            KeyError: if the AS was not observed by the propagation run.
        """
        return self.tables[asn]

    def providers_under_study(self, count: int = 3) -> list[ASN]:
        """The largest Tier-1 ASes by degree (mirrors the dataset helper)."""
        return sorted(
            self.internet.tier1, key=self.graph.degree, reverse=True
        )[:count]

    def tagging_asns(self) -> list[ASN]:
        """Looking Glass ASes that tag routes with relationship communities."""
        return [
            asn
            for asn in self.looking_glass_ases
            if self.assignment.policies[asn].community_plan is not None
        ]

    def stats(self) -> dict[str, int]:
        """Size counters of the compiled index (for the CLI and tests)."""
        return {
            "collector_rows": len(self.col_vantage),
            "interned_prefixes": len(self.prefixes),
            "interned_paths": len(self.paths),
            "adjacency_pairs": len(self.adjacency),
            "looking_glasses": len(self.glasses),
            "glass_route_rows": sum(g.route_count for g in self.glasses.values()),
            "observed_tables": len(self.tables),
            "table_best_rows": sum(t.best_count for t in self.tables.values()),
            "irr_objects": len(self.irr_rows),
        }

    @classmethod
    def from_dataset(cls, dataset: "StudyDataset") -> "MeasurementIndex":
        """Build the index for an assembled study dataset."""
        return cls(dataset)
