"""Immutable IPv4 prefixes and the supernet/subnet algebra.

The paper's prefix-splitting and prefix-aggregation analyses (Section 5.1.5,
Table 9) require asking questions such as "can this prefix be aggregated by
another prefix announced by the same origin?" and "is this prefix a more
specific split out of that one?".  :class:`Prefix` provides that algebra
without depending on :mod:`ipaddress`, keeping the representation a plain
``(network_int, length)`` pair that is cheap to hash and compare — routing
tables in the experiments contain hundreds of thousands of these objects.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

from repro.exceptions import PrefixError

#: Number of bits in an IPv4 address.
IPV4_BITS = 32

#: Maximum value of an IPv4 address as an integer.
IPV4_MAX = 0xFFFFFFFF


def _mask_for(length: int) -> int:
    """Return the network mask for a prefix length as an integer."""
    if length == 0:
        return 0
    return (IPV4_MAX << (IPV4_BITS - length)) & IPV4_MAX


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    Raises:
        PrefixError: if the text is not a valid dotted-quad address.
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise PrefixError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"invalid IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"invalid IPv4 address octet in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if not (0 <= value <= IPV4_MAX):
        raise PrefixError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@total_ordering
class Prefix:
    """An immutable IPv4 prefix such as ``12.10.0.0/19``.

    The host bits of the supplied network address are cleared, mirroring the
    behaviour of routers when a prefix is configured with a non-canonical
    address.

    Attributes:
        network: integer value of the (canonicalised) network address.
        length: prefix length in bits, 0–32.
    """

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int) -> None:
        if not (0 <= length <= IPV4_BITS):
            raise PrefixError(f"invalid prefix length: {length}")
        if not (0 <= network <= IPV4_MAX):
            raise PrefixError(f"network address out of range: {network}")
        object.__setattr__(self, "network", network & _mask_for(length))
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix objects are immutable")

    def __copy__(self) -> "Prefix":
        return self

    def __deepcopy__(self, memo: dict) -> "Prefix":
        return self

    def __reduce__(self):
        return (Prefix, (self.network, self.length))

    # -- construction -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning a /32)."""
        text = text.strip()
        if "/" in text:
            address_text, _, length_text = text.partition("/")
            if not length_text.isdigit():
                raise PrefixError(f"invalid prefix length in {text!r}")
            length = int(length_text)
        else:
            address_text, length = text, IPV4_BITS
        return cls(parse_ipv4(address_text), length)

    @classmethod
    def from_octets(cls, a: int, b: int, c: int, d: int, length: int) -> "Prefix":
        """Build a prefix from four address octets and a length."""
        for octet in (a, b, c, d):
            if not (0 <= octet <= 255):
                raise PrefixError(f"invalid octet: {octet}")
        return cls((a << 24) | (b << 16) | (c << 8) | d, length)

    # -- basic properties ----------------------------------------------

    @property
    def mask(self) -> int:
        """The network mask as an integer."""
        return _mask_for(self.length)

    @property
    def broadcast(self) -> int:
        """The highest address covered by the prefix, as an integer."""
        return self.network | (IPV4_MAX >> self.length if self.length else IPV4_MAX)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (IPV4_BITS - self.length)

    def bits(self) -> str:
        """Return the network bits as a string of '0'/'1' of length ``length``."""
        if self.length == 0:
            return ""
        return format(self.network >> (IPV4_BITS - self.length), f"0{self.length}b")

    # -- algebra --------------------------------------------------------

    def contains(self, other: "Prefix") -> bool:
        """Return ``True`` if ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.mask) == self.network

    def contains_address(self, address: int | str) -> bool:
        """Return ``True`` if the address falls inside this prefix."""
        if isinstance(address, str):
            address = parse_ipv4(address)
        return (address & self.mask) == self.network

    def is_subnet_of(self, other: "Prefix") -> bool:
        """Return ``True`` if this prefix is equal to or more specific than ``other``."""
        return other.contains(self)

    def is_proper_subnet_of(self, other: "Prefix") -> bool:
        """Return ``True`` if this prefix is strictly more specific than ``other``."""
        return self.length > other.length and other.contains(self)

    def supernet(self, new_length: int | None = None) -> "Prefix":
        """Return the covering prefix of the given (shorter) length.

        Without an argument, returns the immediate parent (one bit shorter).
        """
        if new_length is None:
            new_length = self.length - 1
        if new_length < 0 or new_length > self.length:
            raise PrefixError(
                f"cannot take /{new_length} supernet of /{self.length} prefix"
            )
        return Prefix(self.network, new_length)

    def subnets(self, new_length: int | None = None) -> Iterator["Prefix"]:
        """Yield the subnets of the given (longer) length, in address order.

        Without an argument, yields the two immediate children.
        """
        if new_length is None:
            new_length = self.length + 1
        if new_length < self.length or new_length > IPV4_BITS:
            raise PrefixError(
                f"cannot split /{self.length} prefix into /{new_length} subnets"
            )
        step = 1 << (IPV4_BITS - new_length)
        for index in range(1 << (new_length - self.length)):
            yield Prefix(self.network + index * step, new_length)

    def split(self, count: int = 2) -> list["Prefix"]:
        """Split into ``count`` equal more-specific prefixes (count must be a power of two)."""
        if count < 1 or count & (count - 1):
            raise PrefixError(f"split count must be a power of two, got {count}")
        extra_bits = count.bit_length() - 1
        return list(self.subnets(self.length + extra_bits))

    def can_aggregate_with(self, other: "Prefix") -> bool:
        """Return ``True`` if this prefix and ``other`` merge into their common parent."""
        if self.length != other.length or self.length == 0:
            return False
        return self.supernet() == other.supernet() and self != other

    def aggregate_with(self, other: "Prefix") -> "Prefix":
        """Merge two sibling prefixes into their parent prefix."""
        if not self.can_aggregate_with(other):
            raise PrefixError(f"{self} and {other} are not aggregable siblings")
        return self.supernet()

    def common_supernet(self, other: "Prefix") -> "Prefix":
        """Return the longest prefix that covers both this prefix and ``other``."""
        length = min(self.length, other.length)
        while length > 0:
            mask = _mask_for(length)
            if (self.network & mask) == (other.network & mask):
                break
            length -= 1
        return Prefix(self.network, length)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def aggregate_prefixes(prefixes: list[Prefix]) -> list[Prefix]:
    """Aggregate a list of prefixes as far as possible.

    Repeatedly merges sibling prefixes and removes prefixes covered by
    another prefix in the set, returning the minimal covering set in address
    order.  This mirrors what a provider does when it aggregates customer
    announcements out of its own address block (paper Section 5.1.5, Case 2).
    """
    current = sorted(set(prefixes))
    changed = True
    while changed:
        changed = False
        result: list[Prefix] = []
        index = 0
        while index < len(current):
            prefix = current[index]
            if result and result[-1].contains(prefix):
                changed = True
                index += 1
                continue
            if (
                index + 1 < len(current)
                and prefix.can_aggregate_with(current[index + 1])
            ):
                result.append(prefix.supernet())
                changed = True
                index += 2
                continue
            result.append(prefix)
            index += 1
        current = sorted(set(result))
    return current
