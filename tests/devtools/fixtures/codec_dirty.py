"""Fixture: a codec module with schema drift and unknown attributes."""
from dataclasses import dataclass


class StageCodec:
    pass


@dataclass
class Payload:
    left: int
    right: int
    forgotten: str


class PayloadCodec(StageCodec):
    def lower(self, payload: Payload):
        return (payload.left, payload.right, payload.missing)

    def raise_(self, tree):
        left, right = tree
        return Payload(left=left, right=right, bogus=0)
