"""Cisco-style ``show ip bgp`` text output: formatter and parser.

Looking Glass servers expose routing state as IOS command output.  Two forms
appear in the paper:

* the *table* form (one line per candidate route, ``*>`` marking the best
  route) used when downloading whole tables, and
* the *detail* form for a single prefix (the Appendix's
  ``show ip bgp 80.96.180.0`` example) showing LOCAL_PREF and communities.

The formatter renders a :class:`~repro.bgp.rib.LocRib` (or a single entry)
into those shapes and the parser reads them back into
:class:`~repro.bgp.route.Route` objects, so the Looking Glass leg of the
pipeline also crosses a real serialisation boundary.
"""

from __future__ import annotations

import re

from repro.bgp.attributes import Community, CommunitySet, Origin
from repro.bgp.rib import LocRib, RibEntry
from repro.bgp.route import Route, RouteSource
from repro.exceptions import DataFormatError
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

_ORIGIN_CODES = {Origin.IGP: "i", Origin.EGP: "e", Origin.INCOMPLETE: "?"}
_ORIGIN_NAMES = {Origin.IGP: "IGP", Origin.EGP: "EGP", Origin.INCOMPLETE: "incomplete"}
_CODES_TO_ORIGIN = {code: origin for origin, code in _ORIGIN_CODES.items()}
_NAMES_TO_ORIGIN = {name: origin for origin, name in _ORIGIN_NAMES.items()}

_TABLE_HEADER = (
    "   Network            Next Hop AS       Metric LocPrf Path"
)


# ---------------------------------------------------------------------------
# Table form
# ---------------------------------------------------------------------------


def format_show_ip_bgp_table(table: LocRib) -> str:
    """Render a whole table in the ``show ip bgp`` listing format."""
    lines = [
        f"BGP table version is 1, local router ID is 0.0.0.{table.owner % 256}",
        "Status codes: * valid, > best, i - internal",
        "",
        _TABLE_HEADER,
    ]
    for entry in table.entries():
        for route in entry.routes:
            marker = "*>" if route is entry.best else "* "
            path_text = str(route.as_path) if not route.is_local else ""
            origin_code = _ORIGIN_CODES[route.origin]
            lines.append(
                f"{marker} {str(route.prefix):<18} {route.next_hop_as:<10} "
                f"{route.med:>8} {route.local_pref:>6} {path_text} {origin_code}".rstrip()
            )
    return "\n".join(lines) + "\n"


_TABLE_LINE = re.compile(
    r"^(?P<marker>\*>|\* )\s+(?P<prefix>\S+)\s+(?P<next_hop>\d+)\s+"
    r"(?P<med>\d+)\s+(?P<local_pref>\d+)\s*(?P<path>[\d ]*?)\s*(?P<origin>[ie?])$"
)


def parse_show_ip_bgp_table(text: str, view_as: ASN) -> LocRib:
    """Parse the table listing back into a :class:`LocRib` owned by ``view_as``."""
    table = LocRib(owner=view_as)
    best_markers: dict[Prefix, Route] = {}
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line or not (line.startswith("*>") or line.startswith("* ")):
            continue
        match = _TABLE_LINE.match(line)
        if match is None:
            raise DataFormatError(f"unparsable show ip bgp line: {line!r}")
        prefix = Prefix.parse(match.group("prefix"))
        path_text = match.group("path").strip()
        as_path = ASPath.parse(path_text) if path_text else ASPath.origin_only(view_as)
        route = Route(
            prefix=prefix,
            as_path=as_path,
            local_pref=int(match.group("local_pref")),
            med=int(match.group("med")),
            origin=_CODES_TO_ORIGIN[match.group("origin")],
            source=RouteSource.LOCAL if not path_text else RouteSource.EBGP,
            learned_from=int(match.group("next_hop")),
        )
        table.add_route(route)
        if match.group("marker") == "*>":
            best_markers[prefix] = route
    # The parsed table re-runs best selection; when attributes tie the dump's
    # best marker is authoritative, so re-add the marked route last (the
    # incumbent-wins rule keeps it selected on complete ties).
    for prefix, route in best_markers.items():
        entry = table.entry(prefix)
        if entry is not None and entry.best is not route:
            entry.best = table.decision.select_best([route] + entry.alternatives())
    return table


# ---------------------------------------------------------------------------
# Detail form (the Appendix example)
# ---------------------------------------------------------------------------


def format_show_ip_bgp_detail(entry: RibEntry, view_as: ASN) -> str:
    """Render one prefix's entry in the per-prefix detail format."""
    routes = list(entry.routes)
    if not routes:
        raise DataFormatError(f"entry for {entry.prefix} has no routes")
    best_index = routes.index(entry.best) + 1 if entry.best in routes else 1
    lines = [
        f"BGP routing table entry for {entry.prefix}",
        f"Paths: ({len(routes)} available, best #{best_index})",
    ]
    for route in routes:
        path_text = str(route.as_path) if not route.is_local else "Local"
        lines.append(f"  {path_text}")
        lines.append(
            f"    0.0.0.0 from 0.0.0.{route.next_hop_as % 256} (AS{route.next_hop_as})"
        )
        qualifiers = [
            f"Origin {_ORIGIN_NAMES[route.origin]}",
            f"metric {route.med}",
            f"localpref {route.local_pref}",
        ]
        if route.source is RouteSource.IBGP:
            qualifiers.append("internal")
        if route is entry.best:
            qualifiers.append("best")
        lines.append("      " + ", ".join(qualifiers))
        if route.communities:
            lines.append(f"      Community: {route.communities}")
    return "\n".join(lines) + "\n"


def parse_show_ip_bgp_detail(text: str, view_as: ASN) -> RibEntry:
    """Parse the per-prefix detail format back into a :class:`RibEntry`."""
    lines = [line.rstrip() for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("BGP routing table entry for "):
        raise DataFormatError("missing 'BGP routing table entry for' header")
    prefix = Prefix.parse(lines[0].split("for ", 1)[1])
    best_match = re.search(r"best #(\d+)", lines[1]) if len(lines) > 1 else None
    best_index = int(best_match.group(1)) if best_match else 1

    entry = RibEntry(prefix=prefix)
    index = 2
    route_number = 0
    while index < len(lines):
        path_line = lines[index].strip()
        index += 1
        if path_line == "Local":
            as_path = ASPath.origin_only(view_as)
            source = RouteSource.LOCAL
        else:
            try:
                as_path = ASPath.parse(path_line)
            except Exception as exc:
                raise DataFormatError(f"unparsable AS path line: {path_line!r}") from exc
            source = RouteSource.EBGP
        learned_from: ASN | None = None
        local_pref = 100
        med = 0
        origin = Origin.IGP
        communities = CommunitySet()
        while index < len(lines) and not _looks_like_path(lines[index]):
            detail = lines[index].strip()
            index += 1
            if detail.startswith("Community:"):
                values = detail.split(":", 1)[1].split()
                communities = CommunitySet(
                    value for value in values if ":" in value
                )
                continue
            from_match = re.search(r"\(AS(\d+)\)", detail)
            if from_match:
                learned_from = int(from_match.group(1))
                continue
            origin_match = re.search(r"Origin (\w+)", detail)
            if origin_match:
                origin = _NAMES_TO_ORIGIN.get(origin_match.group(1), Origin.IGP)
            pref_match = re.search(r"localpref (\d+)", detail)
            if pref_match:
                local_pref = int(pref_match.group(1))
            med_match = re.search(r"metric (\d+)", detail)
            if med_match:
                med = int(med_match.group(1))
        route_number += 1
        route = Route(
            prefix=prefix,
            as_path=as_path,
            local_pref=local_pref,
            med=med,
            origin=origin,
            communities=communities,
            source=source,
            learned_from=learned_from,
        )
        entry.routes.append(route)
        if route_number == best_index:
            entry.best = route
    if not entry.routes:
        raise DataFormatError(f"no routes parsed for {prefix}")
    if entry.best is None:
        entry.best = entry.routes[0]
    return entry


def _looks_like_path(line: str) -> bool:
    """``True`` if the line starts a new path block (AS numbers or 'Local')."""
    stripped = line.strip()
    if stripped == "Local":
        return True
    return bool(re.fullmatch(r"[\d ]+", stripped)) and not line.startswith("      ")
