"""Benchmarks: propagation engines, the analyzer pass and warm-cache sweeps.

Three suites, selected with ``--suite``:

* ``propagation`` (default) — times the legacy and fast propagation engines
  (``BENCH_propagation.json``).
* ``analysis`` — times the paper's full analyzer pass twice over the same
  dataset: once with the legacy per-analyzer :mod:`repro.core` classes, once
  through the compiled :class:`~repro.analysis.index.MeasurementIndex` +
  :class:`~repro.analysis.engine.AnalysisEngine` (index build *included* in
  the timed engine pass).  Writes ``BENCH_analysis.json``.
* ``sweep`` — times a multi-scenario ``repro sweep`` cold (empty artifact
  store) versus warm (same store, fresh sweep directory) and verifies the
  warm run served every case from the durable store with byte-identical
  reports; also interrupts a sweep mid-flight and checks the resume path.
  Writes ``BENCH_sweep.json``.

Usage::

    python benchmarks/run_bench.py                       # propagation: small + standard
    python benchmarks/run_bench.py --scenario standard --workers 1 2 4
    python benchmarks/run_bench.py --suite analysis --scenario large
    python benchmarks/run_bench.py --suite analysis --full
    python benchmarks/run_bench.py --full                # adds the large scenario
    python benchmarks/run_bench.py --suite sweep         # 20 sampled scenarios
    python benchmarks/run_bench.py --suite sweep --workers 4

All suites cross-check the timed runs against the golden behaviour (the
propagation suite compares message counts, the analysis suite compares the
actual result objects, the sweep suite compares report bytes) — a benchmark
that drifts fails loudly instead of reporting a meaningless speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.session.cache import StageCache  # noqa: E402
from repro.session.scenarios import resolve_scenario  # noqa: E402
from repro.simulation.fastpath import FastPropagationEngine, compile_topology  # noqa: E402
from repro.simulation.propagation import PropagationEngine  # noqa: E402

_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = _ROOT / "BENCH_propagation.json"
DEFAULT_ANALYSIS_OUTPUT = _ROOT / "BENCH_analysis.json"
DEFAULT_SWEEP_OUTPUT = _ROOT / "BENCH_sweep.json"

#: Default sweep-bench case list: four samples of each scenario family —
#: 20 distinct sampled scenarios.
SWEEP_CASES = [
    f"{family}@{seed}"
    for family in (
        "peering-density",
        "multihoming",
        "hierarchy-depth",
        "community-adoption",
        "collector-size",
    )
    for seed in range(4)
]


def _time_legacy(internet, plan, repeats: int) -> tuple[float, int]:
    best = None
    messages = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = PropagationEngine(
            internet, plan.assignment, observed_ases=plan.observed_ases
        ).run()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        messages = result.message_count
    return best, messages


def _time_fast(
    internet, plan, workers: int, repeats: int
) -> tuple[float, float, int, dict]:
    best = None
    best_compile = None
    best_phases: dict[str, float] = {}
    messages = 0
    for _ in range(repeats):
        started = time.perf_counter()
        compiled = compile_topology(internet, plan.assignment, plan.observed_ases)
        compile_seconds = time.perf_counter() - started
        engine = FastPropagationEngine(
            internet,
            plan.assignment,
            observed_ases=plan.observed_ases,
            workers=workers,
            compiled=compiled,
        )
        result = engine.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
            best_compile = compile_seconds
            # The engine measured compilation as 0 (it got `compiled`);
            # substitute the bench-side measurement so the breakdown sums
            # to the reported wall time.
            best_phases = dict(engine.last_run_phases, compile=compile_seconds)
        messages = result.message_count
    return best, best_compile, messages, best_phases


def run_benchmarks(
    scenarios: list[str], workers: list[int], repeats: int
) -> list[dict]:
    cpu_count = os.cpu_count() or 1
    oversubscribed = [count for count in workers if count > cpu_count]
    if oversubscribed:
        print(
            f"warning: worker counts {oversubscribed} exceed cpu_count="
            f"{cpu_count}; multi-worker rows measure shard/merge overhead, "
            "not parallel speedup, on this machine",
            file=sys.stderr,
        )
    results = []
    for name in scenarios:
        study = resolve_scenario(name).study(cache=StageCache())
        internet = study.topology()
        plan = study.policies()
        print(f"[{name}] timing legacy engine ...", file=sys.stderr)
        legacy_seconds, legacy_messages = _time_legacy(internet, plan, repeats)
        results.append(
            {
                "scenario": name,
                "engine": "legacy",
                "workers": 1,
                "cpu_count": cpu_count,
                "seconds": round(legacy_seconds, 4),
                "compile_seconds": 0.0,
                "messages": legacy_messages,
                "speedup_vs_legacy": 1.0,
            }
        )
        print(
            f"[{name}] legacy: {legacy_seconds:.2f}s ({legacy_messages} messages)",
            file=sys.stderr,
        )
        for worker_count in workers:
            print(
                f"[{name}] timing fast engine (workers={worker_count}) ...",
                file=sys.stderr,
            )
            fast_seconds, compile_seconds, fast_messages, phases = _time_fast(
                internet, plan, worker_count, repeats
            )
            if fast_messages != legacy_messages:
                raise SystemExit(
                    f"engine divergence on {name!r}: legacy processed "
                    f"{legacy_messages} messages, fast {fast_messages}"
                )
            results.append(
                {
                    "scenario": name,
                    "engine": "fast",
                    "workers": worker_count,
                    "cpu_count": cpu_count,
                    "seconds": round(fast_seconds, 4),
                    "compile_seconds": round(compile_seconds, 4),
                    "phases": {k: round(v, 4) for k, v in sorted(phases.items())},
                    "messages": fast_messages,
                    "speedup_vs_legacy": round(legacy_seconds / fast_seconds, 2),
                }
            )
            print(
                f"[{name}] fast(workers={worker_count}): {fast_seconds:.2f}s "
                f"({legacy_seconds / fast_seconds:.2f}x)",
                file=sys.stderr,
            )
    return results


# -- the analyzer-pass suite --------------------------------------------------------


def _legacy_analyzer_pass(dataset) -> tuple[dict, dict]:
    """Run the paper's full analyzer pass with the legacy repro.core classes.

    Returns ``(results, step timings)``; the results dict is compared
    against the engine pass for equality.
    """
    from repro.core.atoms import PolicyAtomAnalyzer
    from repro.core.causes import CauseAnalyzer
    from repro.core.community import CommunityAnalyzer
    from repro.core.consistency import ConsistencyAnalyzer
    from repro.core.export_policy import ExportPolicyAnalyzer
    from repro.core.import_policy import ImportPolicyAnalyzer
    from repro.core.peer_export import PeerExportAnalyzer
    from repro.core.verification import Verifier
    from repro.relationships.gao import GaoInference

    graph = dataset.ground_truth_graph
    glasses = [dataset.looking_glass_of(a) for a in dataset.looking_glass_ases]
    tagging = [
        dataset.looking_glass_of(a)
        for a in dataset.looking_glass_ases
        if dataset.assignment.policies[a].community_plan is not None
    ]
    providers = dataset.providers_under_study(3)
    tables = {p: dataset.result.table_of(p) for p in providers}
    originated = dataset.internet.originated

    results: dict = {}
    timings: dict[str, float] = {}

    def step(name, fn):
        started = time.perf_counter()
        results[name] = fn()
        timings[name] = time.perf_counter() - started

    step("atoms", lambda: PolicyAtomAnalyzer().compute_atoms(dataset.collector))
    importer = ImportPolicyAnalyzer(graph)
    step("import_lg", lambda: importer.analyze_many(glasses))
    step("import_irr", lambda: importer.analyze_irr(dataset.irr, min_neighbors=5))
    consistency = ConsistencyAnalyzer()
    step("consistency_as", lambda: consistency.analyze_many(glasses))
    biggest = max(glasses, key=lambda g: len(list(g.table.prefixes())))
    step(
        "consistency_routers",
        lambda: consistency.analyze_routers(biggest, router_count=30),
    )
    exporter = ExportPolicyAnalyzer(graph)
    step(
        "sa_studied",
        lambda: exporter.analyze_providers(tables, known_customer_prefixes=originated),
    )
    step(
        "sa_all",
        lambda: exporter.analyze_providers(
            {
                asn: dataset.result.table_of(asn)
                for asn in dataset.result.observed_ases
                if graph.customers_of(asn)
            },
            known_customer_prefixes=originated,
        ),
    )
    step(
        "customer_sa",
        lambda: exporter.analyze_customers(results["sa_studied"], tables),
    )
    step(
        "peer_export",
        lambda: PeerExportAnalyzer(graph).analyze_many(tables, originated=originated),
    )
    causes = CauseAnalyzer(graph)
    step(
        "causes",
        lambda: {
            p: (
                causes.homing_breakdown(r),
                causes.cause_breakdown(r, tables[p]),
                causes.case3_analysis(r, dataset.collector),
            )
            for p, r in results["sa_studied"].items()
        },
    )
    community = CommunityAnalyzer()
    step(
        "community",
        lambda: [
            (community.neighbor_signatures(g), community.infer_semantics(g))
            for g in tagging
        ],
    )
    step("fig9", lambda: [community.prefix_counts_by_rank(g) for g in glasses])
    step(
        "verify_relationships",
        lambda: Verifier(
            GaoInference().infer(dataset.collector.all_paths()).graph,
            CommunityAnalyzer(),
        ).verify_relationships(tagging),
    )
    step(
        "verify_sa",
        lambda: Verifier(graph).verify_many(results["sa_studied"], dataset.collector),
    )
    return results, timings


def _engine_analyzer_pass(dataset) -> tuple[dict, dict]:
    """Run the same analyzer pass through a freshly compiled index.

    The index build is a timed step (``index_build``), so the reported
    engine total is end-to-end honest.
    """
    from repro.analysis.engine import AnalysisEngine
    from repro.analysis.index import MeasurementIndex

    results: dict = {}
    timings: dict[str, float] = {}

    def step(name, fn):
        started = time.perf_counter()
        results[name] = fn()
        timings[name] = time.perf_counter() - started

    started = time.perf_counter()
    engine = AnalysisEngine(MeasurementIndex.from_dataset(dataset))
    timings["index_build"] = time.perf_counter() - started

    step("atoms", engine.atoms)
    step("import_lg", engine.import_typicality)
    step("import_irr", lambda: engine.irr_typicality(min_neighbors=5))
    step("consistency_as", engine.consistency_by_as)
    step("consistency_routers", lambda: engine.consistency_by_router(router_count=30))
    step("sa_studied", engine.sa_reports)
    step("sa_all", engine.all_provider_reports)
    step("customer_sa", engine.customer_sa_reports)
    step("peer_export", engine.peer_export_reports)
    step(
        "causes",
        lambda: {
            p: (engine.homing_breakdown(p), engine.cause_breakdown(p), engine.case3(p))
            for p in engine.sa_reports()
        },
    )
    step(
        "community",
        lambda: [
            (engine.neighbor_signatures(a), engine.infer_semantics(a))
            for a in engine.tagging_asns()
        ],
    )
    step(
        "fig9",
        lambda: [
            engine.prefix_counts_by_rank(a) for a in engine.index.looking_glass_ases
        ],
    )
    step("verify_relationships", engine.verify_relationships)
    step("verify_sa", engine.verify_sa_prefixes)
    return results, timings


def run_analysis_benchmarks(scenarios: list[str], repeats: int) -> list[dict]:
    """Time the legacy vs. index-backed analyzer pass per scenario."""
    results = []
    for name in scenarios:
        print(f"[{name}] building dataset ...", file=sys.stderr)
        dataset = resolve_scenario(name).study(cache=StageCache()).dataset()

        legacy_best = None
        legacy_timings: dict[str, float] = {}
        legacy_results: dict = {}
        for _ in range(repeats):
            print(f"[{name}] timing legacy analyzer pass ...", file=sys.stderr)
            legacy_results, timings = _legacy_analyzer_pass(dataset)
            total = sum(timings.values())
            if legacy_best is None or total < legacy_best:
                legacy_best, legacy_timings = total, timings

        engine_best = None
        engine_timings: dict[str, float] = {}
        engine_results: dict = {}
        for _ in range(repeats):
            print(f"[{name}] timing engine analyzer pass ...", file=sys.stderr)
            engine_results, timings = _engine_analyzer_pass(dataset)
            total = sum(timings.values())
            if engine_best is None or total < engine_best:
                engine_best, engine_timings = total, timings

        for step_name, legacy_value in legacy_results.items():
            if engine_results[step_name] != legacy_value:
                raise SystemExit(
                    f"analyzer divergence on {name!r}: step {step_name!r} differs "
                    "between the legacy pass and the engine pass"
                )
        speedup = round(legacy_best / engine_best, 2)
        print(
            f"[{name}] legacy {legacy_best:.2f}s, engine {engine_best:.2f}s "
            f"(index {engine_timings['index_build']:.2f}s) -> {speedup}x",
            file=sys.stderr,
        )
        results.append(
            {
                "scenario": name,
                "legacy_seconds": round(legacy_best, 4),
                "engine_seconds": round(engine_best, 4),
                "index_build_seconds": round(engine_timings["index_build"], 4),
                "speedup_vs_legacy": speedup,
                "legacy_steps": {k: round(v, 4) for k, v in legacy_timings.items()},
                "engine_steps": {k: round(v, 4) for k, v in engine_timings.items()},
            }
        )
    return results


# -- the warm-cache sweep suite -----------------------------------------------------


def _sweep_case_bytes(report) -> dict[str, bytes]:
    """The per-case report file contents of one sweep, keyed by spec."""
    return {
        case.spec: pathlib.Path(case.report_path).read_bytes()
        for case in report.cases
        if case.report_path
    }


def run_sweep_benchmarks(
    cases: list[str], workers: int, quick: bool
) -> list[dict]:
    """Time a sweep cold vs. warm over one shared artifact store.

    The cold pass starts from an empty store; the warm pass reuses it from
    a fresh sweep directory, so every case must be served from the durable
    ``report`` tier.  Byte-identity of every case report and a mid-sweep
    interrupt/resume are verified before any speedup is reported.
    """
    import tempfile

    from repro.session.sweep import SweepInterrupted, run_sweep

    results = []
    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        root = pathlib.Path(tmp)
        cache_dir = root / "cache"
        print(
            f"[sweep] cold pass: {len(cases)} cases, workers={workers} ...",
            file=sys.stderr,
        )
        cold = run_sweep(
            cases, cache_dir=cache_dir, sweep_dir=root / "cold", workers=workers
        )
        if not cold.ok:
            raise SystemExit(f"cold sweep failed: {cold.render()}")
        print(
            f"[sweep] cold: {cold.total_seconds:.2f}s; warm pass ...",
            file=sys.stderr,
        )
        warm = run_sweep(
            cases, cache_dir=cache_dir, sweep_dir=root / "warm", workers=workers
        )
        if warm.count("cached") != len(cases):
            raise SystemExit(
                f"warm sweep recomputed cases: {warm.to_json(indent=None)}"
            )
        if _sweep_case_bytes(cold) != _sweep_case_bytes(warm):
            raise SystemExit("warm sweep reports are not byte-identical to cold")

        # Resume correctness: interrupt a fresh sweep after a few cases,
        # then resume and require every earlier case to be skipped.  The
        # threshold must leave at least one case unfinished or the hook
        # never fires (possible with a short --scenario list).
        interrupt_after = min(2 if quick else 5, max(1, len(cases) - 1))
        resume_cache = root / "resume-cache"
        try:
            run_sweep(
                cases,
                cache_dir=resume_cache,
                workers=workers,
                fail_after=interrupt_after,
            )
            raise SystemExit("sweep interruption hook did not fire")
        except SweepInterrupted:
            pass
        resumed = run_sweep(cases, cache_dir=resume_cache, workers=workers)
        if not resumed.ok or resumed.count("resumed") < interrupt_after:
            raise SystemExit(
                f"sweep resume recomputed finished cases: "
                f"{resumed.to_json(indent=None)}"
            )

        speedup = round(cold.total_seconds / warm.total_seconds, 2)
        print(
            f"[sweep] warm: {warm.total_seconds:.2f}s -> {speedup}x "
            f"(resume skipped {resumed.count('resumed')} cases)",
            file=sys.stderr,
        )
        results.append(
            {
                "cases": len(cases),
                "case_specs": list(cases),
                "workers": workers,
                "experiments": "all",
                "cold_seconds": round(cold.total_seconds, 4),
                "warm_seconds": round(warm.total_seconds, 4),
                "speedup_warm_vs_cold": speedup,
                "warm_all_cached": True,
                "byte_identical_reports": True,
                "resume_interrupt_after": interrupt_after,
                "resume_skipped": resumed.count("resumed"),
            }
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=("propagation", "analysis", "sweep"),
        default="propagation",
        help="what to benchmark: the propagation engines (default), the "
        "analyzer pass (legacy repro.core vs the compiled measurement index) "
        "or cold-vs-warm multi-scenario sweeps over the artifact store",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario preset or family sample ('family@seed', e.g. "
        "multihoming@7) to benchmark (repeatable; default: small, standard)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1],
        help="fast-engine worker counts to benchmark (default: 1)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="repetitions per cell, best kept"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: force a single repeat of the given scenarios",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="benchmark small, standard and large (overrides --scenario)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="where to write the JSON report (default: "
        f"{DEFAULT_OUTPUT.name} / {DEFAULT_ANALYSIS_OUTPUT.name} per suite)",
    )
    args = parser.parse_args(argv)

    scenarios = args.scenarios or ["small", "standard"]
    if args.full:
        scenarios = ["small", "standard", "large"]
    repeats = 1 if args.quick else max(1, args.repeats)

    if args.suite == "sweep":
        cases = args.scenarios or SWEEP_CASES
        if args.quick:
            cases = cases[: min(6, len(cases))]
        workers = max(args.workers) if args.workers else 1
        results = run_sweep_benchmarks(cases, workers, args.quick)
        output = args.output or DEFAULT_SWEEP_OUTPUT
    elif args.suite == "analysis":
        if args.workers != [1]:
            print(
                "note: --workers applies only to the propagation suite; "
                "the analysis suite ignores it",
                file=sys.stderr,
            )
        results = run_analysis_benchmarks(scenarios, repeats)
        output = args.output or DEFAULT_ANALYSIS_OUTPUT
    else:
        results = run_benchmarks(scenarios, args.workers, repeats)
        output = args.output or DEFAULT_OUTPUT
    report = {
        "meta": {
            "suite": args.suite,
            "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "repeats": repeats,
            "quick": args.quick,
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
