"""Import/export policy engine: prefix-lists, access-lists, community-lists
and route-maps.

The paper's configuration examples (Section 2.2.1) are expressed in Cisco IOS
terms::

    access-list 1 permit 0.0.0.0 255.255.255.255
    route-map isp1 permit
      match ip address 1
      set local-preference 90

    ip prefix-list 1 permit 10.1.1.1/24
    route-map isp1 permit
      match ip address prefix-list 1
      set local-preference 80

This module models those constructs directly so that (a) the synthetic
Internet can be *configured* the way operators configure routers, and (b) the
import-policy inference can be validated against the configuration that
produced the tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.bgp.attributes import Community, CommunitySet, WellKnownCommunity
from repro.bgp.route import Route
from repro.exceptions import PolicyError
from repro.net.asn import ASN
from repro.net.prefix import Prefix


class PolicyAction(enum.Enum):
    """Whether a matching route is permitted or denied."""

    PERMIT = "permit"
    DENY = "deny"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# ---------------------------------------------------------------------------
# Match lists
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrefixListEntry:
    """One ``ip prefix-list`` entry.

    ``ge``/``le`` extend the match to more-specific prefixes the way IOS
    does; when both are ``None`` only the exact prefix matches.
    """

    action: PolicyAction
    prefix: Prefix
    ge: int | None = None
    le: int | None = None

    def matches(self, candidate: Prefix) -> bool:
        """Return ``True`` if the candidate prefix matches this entry."""
        if self.ge is None and self.le is None:
            return candidate == self.prefix
        if not self.prefix.contains(candidate):
            return False
        lower = self.ge if self.ge is not None else self.prefix.length
        upper = self.le if self.le is not None else 32
        return lower <= candidate.length <= upper


@dataclass
class PrefixList:
    """An ordered ``ip prefix-list``; first matching entry wins."""

    name: str
    entries: list[PrefixListEntry] = field(default_factory=list)

    def permit(self, prefix: Prefix | str, ge: int | None = None, le: int | None = None) -> "PrefixList":
        """Append a permit entry (returns self for chaining)."""
        return self._append(PolicyAction.PERMIT, prefix, ge, le)

    def deny(self, prefix: Prefix | str, ge: int | None = None, le: int | None = None) -> "PrefixList":
        """Append a deny entry (returns self for chaining)."""
        return self._append(PolicyAction.DENY, prefix, ge, le)

    def _append(
        self, action: PolicyAction, prefix: Prefix | str, ge: int | None, le: int | None
    ) -> "PrefixList":
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self.entries.append(PrefixListEntry(action, prefix, ge, le))
        return self

    def evaluate(self, prefix: Prefix) -> PolicyAction:
        """Return the action of the first matching entry (implicit deny)."""
        for entry in self.entries:
            if entry.matches(prefix):
                return entry.action
        return PolicyAction.DENY

    def permits(self, prefix: Prefix) -> bool:
        """Return ``True`` if the prefix is permitted."""
        return self.evaluate(prefix) is PolicyAction.PERMIT


@dataclass
class AccessList:
    """A numbered IP access-list used to match route prefixes.

    Matches the address/wildcard-mask form used in the paper's first example:
    ``access-list 1 permit 0.0.0.0 255.255.255.255`` (match everything).
    """

    name: str
    entries: list[tuple[PolicyAction, int, int]] = field(default_factory=list)

    def permit(self, address: str, wildcard: str) -> "AccessList":
        """Append a permit entry given dotted address and wildcard mask."""
        return self._append(PolicyAction.PERMIT, address, wildcard)

    def deny(self, address: str, wildcard: str) -> "AccessList":
        """Append a deny entry given dotted address and wildcard mask."""
        return self._append(PolicyAction.DENY, address, wildcard)

    def _append(self, action: PolicyAction, address: str, wildcard: str) -> "AccessList":
        from repro.net.prefix import parse_ipv4

        self.entries.append((action, parse_ipv4(address), parse_ipv4(wildcard)))
        return self

    def evaluate(self, prefix: Prefix) -> PolicyAction:
        """Return the action of the first entry matching the prefix's network address."""
        for action, address, wildcard in self.entries:
            if (prefix.network & ~wildcard & 0xFFFFFFFF) == (address & ~wildcard & 0xFFFFFFFF):
                return action
        return PolicyAction.DENY

    def permits(self, prefix: Prefix) -> bool:
        """Return ``True`` if the prefix is permitted."""
        return self.evaluate(prefix) is PolicyAction.PERMIT


@dataclass
class CommunityList:
    """A community-list: matches routes carrying any of the listed communities."""

    name: str
    communities: list[Community] = field(default_factory=list)

    def add(self, community: Community | str) -> "CommunityList":
        """Append a community to match (returns self for chaining)."""
        if isinstance(community, str):
            community = Community.parse(community)
        self.communities.append(community)
        return self

    def matches(self, communities: CommunitySet) -> bool:
        """Return ``True`` if the route's community set contains any listed value."""
        return any(communities.has(community) for community in self.communities)


# ---------------------------------------------------------------------------
# Route maps
# ---------------------------------------------------------------------------


@dataclass
class MatchCondition:
    """The ``match`` part of a route-map clause.

    All configured conditions must hold for the clause to match; an empty
    condition matches every route (as in the paper's ``route-map isp1
    permit`` with a match-everything access list).
    """

    prefix_list: PrefixList | None = None
    access_list: AccessList | None = None
    community_list: CommunityList | None = None
    next_hop_as: ASN | None = None
    as_path_contains: ASN | None = None
    origin_as: ASN | None = None

    def matches(self, route: Route) -> bool:
        """Return ``True`` if the route satisfies every configured condition."""
        if self.prefix_list is not None and not self.prefix_list.permits(route.prefix):
            return False
        if self.access_list is not None and not self.access_list.permits(route.prefix):
            return False
        if self.community_list is not None and not self.community_list.matches(
            route.communities
        ):
            return False
        if self.next_hop_as is not None and route.next_hop_as != self.next_hop_as:
            return False
        if self.as_path_contains is not None and not route.as_path.contains(
            self.as_path_contains
        ):
            return False
        if self.origin_as is not None and route.origin_as != self.origin_as:
            return False
        return True


@dataclass
class SetActions:
    """The ``set`` part of a route-map clause."""

    local_pref: int | None = None
    med: int | None = None
    prepend: tuple[ASN, int] | None = None
    add_communities: tuple[Community | WellKnownCommunity, ...] = ()
    delete_communities: tuple[Community | WellKnownCommunity, ...] = ()

    def apply(self, route: Route) -> Route:
        """Return a copy of the route with the set actions applied."""
        result = route
        if self.local_pref is not None:
            result = result.with_local_pref(self.local_pref)
        if self.med is not None:
            result = result.replace(med=self.med)
        if self.prepend is not None:
            asn, count = self.prepend
            result = result.replace(as_path=result.as_path.prepend(asn, count))
        if self.add_communities:
            result = result.with_communities(result.communities.add(*self.add_communities))
        if self.delete_communities:
            result = result.with_communities(
                result.communities.remove(*self.delete_communities)
            )
        return result


@dataclass
class RouteMapClause:
    """One ``route-map <name> permit|deny <seq>`` clause."""

    action: PolicyAction
    sequence: int = 10
    match: MatchCondition = field(default_factory=MatchCondition)
    set_actions: SetActions = field(default_factory=SetActions)


@dataclass
class RouteMap:
    """An ordered route-map: the first matching clause decides.

    A route that matches no clause is denied (IOS's implicit deny), matching
    the semantics the paper's configuration examples rely on.
    """

    name: str
    clauses: list[RouteMapClause] = field(default_factory=list)

    def add_clause(self, clause: RouteMapClause) -> "RouteMap":
        """Append a clause, keeping clauses ordered by sequence number."""
        self.clauses.append(clause)
        self.clauses.sort(key=lambda c: c.sequence)
        return self

    def permit(
        self,
        sequence: int = 10,
        match: MatchCondition | None = None,
        set_actions: SetActions | None = None,
    ) -> "RouteMap":
        """Append a permit clause (returns self for chaining)."""
        return self.add_clause(
            RouteMapClause(
                PolicyAction.PERMIT,
                sequence,
                match or MatchCondition(),
                set_actions or SetActions(),
            )
        )

    def deny(self, sequence: int = 10, match: MatchCondition | None = None) -> "RouteMap":
        """Append a deny clause (returns self for chaining)."""
        return self.add_clause(
            RouteMapClause(PolicyAction.DENY, sequence, match or MatchCondition())
        )

    def apply(self, route: Route) -> Route | None:
        """Apply the route-map to one route.

        Returns the (possibly modified) route if permitted, ``None`` if
        denied or unmatched.
        """
        for clause in self.clauses:
            if clause.match.matches(route):
                if clause.action is PolicyAction.DENY:
                    return None
                return clause.set_actions.apply(route)
        return None

    def apply_all(self, routes: Iterable[Route]) -> list[Route]:
        """Apply the route-map to many routes, dropping denied ones."""
        results = []
        for route in routes:
            outcome = self.apply(route)
            if outcome is not None:
                results.append(outcome)
        return results


# ---------------------------------------------------------------------------
# Convenience builders used throughout the simulation and tests
# ---------------------------------------------------------------------------


def match_all_route_map(name: str, local_pref: int) -> RouteMap:
    """Build the paper's first example: accept everything, set one LOCAL_PREF.

    Mirrors::

        access-list 1 permit 0.0.0.0 255.255.255.255
        route-map <name> permit
          match ip address 1
          set local-preference <local_pref>
    """
    access = AccessList(name="1").permit("0.0.0.0", "255.255.255.255")
    return RouteMap(name=name).permit(
        match=MatchCondition(access_list=access),
        set_actions=SetActions(local_pref=local_pref),
    )


def per_prefix_route_map(
    name: str, prefix_prefs: Sequence[tuple[Prefix | str, int]], default_pref: int | None = None
) -> RouteMap:
    """Build the paper's second example: per-prefix LOCAL_PREF via prefix-lists.

    Each ``(prefix, local_pref)`` pair becomes one clause; an optional final
    clause assigns ``default_pref`` to everything else.
    """
    route_map = RouteMap(name=name)
    sequence = 10
    for prefix, pref in prefix_prefs:
        plist = PrefixList(name=f"{name}-{sequence}").permit(prefix)
        route_map.permit(
            sequence=sequence,
            match=MatchCondition(prefix_list=plist),
            set_actions=SetActions(local_pref=pref),
        )
        sequence += 10
    if default_pref is not None:
        route_map.permit(sequence=sequence, set_actions=SetActions(local_pref=default_pref))
    return route_map


def deny_to_neighbor_route_map(name: str, denied_prefixes: Iterable[Prefix | str]) -> RouteMap:
    """Build an export route-map that withholds specific prefixes from a neighbor.

    This is the primitive behind the paper's *selective announcement*
    export policy (Section 5.1.5, Case 3).
    """
    plist = PrefixList(name=f"{name}-deny")
    for prefix in denied_prefixes:
        plist.permit(prefix)
    route_map = RouteMap(name=name)
    route_map.deny(sequence=10, match=MatchCondition(prefix_list=plist))
    route_map.permit(sequence=20)
    return route_map


def community_tagging_route_map(name: str, community: Community | str) -> RouteMap:
    """Build an import route-map that tags every accepted route with one community.

    This is how the Appendix's relationship-tagging communities (Table 11)
    get attached at the border.
    """
    if isinstance(community, str):
        community = Community.parse(community)
    return RouteMap(name=name).permit(
        set_actions=SetActions(add_communities=(community,))
    )
