"""Warm-cache and sweep-resume smoke checks (``python -m scripts.ci_cache_smoke``).

Two end-to-end properties of the durable artifact store, exercised the way
CI (and a skeptical developer) would:

1. **Warm cache** — the small suite runs twice against one shared
   ``--cache-dir``.  The second run must decode every pipeline stage from
   the disk tier (zero stage builds) and produce a timing-masked suite JSON
   byte-identical to the first run's.
2. **Sweep resume** — a sweep is killed mid-flight (deterministically, via
   the ``REPRO_SWEEP_FAIL_AFTER`` hook, in a separate process so the crash
   is real) and then re-run with the same arguments.  The resumed sweep
   must skip every case the manifest recorded and complete the rest, and
   the final manifest must cover every case.

Pure standard library; exits non-zero with a message on the first failure.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.session.cache import StageCache  # noqa: E402
from repro.session.scenarios import get_scenario  # noqa: E402
from repro.session.stages import Stage  # noqa: E402
from repro.session.suite import run_suite  # noqa: E402
from repro.storage.store import DiskStore  # noqa: E402

#: Small, fast sweep cases for the resume check.
SWEEP_CASES = ["collector-size@0", "collector-size@1", "multihoming@0"]


def check_warm_cache(cache_dir: pathlib.Path) -> None:
    """Run the small suite twice over one store; assert full disk reuse."""
    disk = DiskStore(cache_dir)
    cold_study = get_scenario("small").study(cache=StageCache(disk=disk))
    cold = run_suite(cold_study, scenario="small").to_json(include_timing=False)

    warm_study = get_scenario("small").study(cache=StageCache(disk=disk))
    warm = run_suite(warm_study, scenario="small").to_json(include_timing=False)

    for stage in Stage:
        stats = warm_study.cache.stats_for(stage.value)
        if stats.misses:
            raise SystemExit(
                f"warm run rebuilt stage {stage.value!r} "
                f"({stats.misses} build(s)) instead of reading the disk tier"
            )
        if stats.disk_hits < 1:
            raise SystemExit(f"warm run never touched the disk tier for {stage.value!r}")
    if cold != warm:
        raise SystemExit("warm-run suite JSON differs from the cold run")
    print("warm-cache check ok: all stages disk-hit, reports byte-identical")


def check_sweep_resume(cache_dir: pathlib.Path) -> None:
    """Kill a sweep mid-flight in a child process, resume, verify manifest."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_SWEEP_FAIL_AFTER"] = "1"
    command = [
        sys.executable, "-m", "repro", "sweep", *SWEEP_CASES,
        "-e", "table2", "--cache-dir", str(cache_dir),
    ]
    interrupted = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=600
    )
    if interrupted.returncode != 3:
        raise SystemExit(
            f"interrupted sweep exited with {interrupted.returncode}, expected 3:\n"
            f"{interrupted.stderr}"
        )

    env.pop("REPRO_SWEEP_FAIL_AFTER")
    resumed = subprocess.run(
        command + ["--json"], env=env, capture_output=True, text=True, timeout=600
    )
    if resumed.returncode != 0:
        raise SystemExit(f"resumed sweep failed:\n{resumed.stderr}")
    report = json.loads(resumed.stdout)
    if report["counts"]["resumed"] < 1:
        raise SystemExit(f"resume recomputed finished cases: {report['counts']}")

    manifests = list((cache_dir / "sweeps").glob("*/manifest.json"))
    if len(manifests) != 1:
        raise SystemExit(f"expected exactly one sweep manifest, found {len(manifests)}")
    manifest = json.loads(manifests[0].read_text())
    missing = set(SWEEP_CASES) - set(manifest["cases"])
    if missing:
        raise SystemExit(f"manifest incomplete after resume: missing {sorted(missing)}")
    print(
        f"sweep-resume check ok: {report['counts']['resumed']} case(s) resumed, "
        "manifest complete"
    )


def main() -> int:
    """Run both checks inside a temporary store."""
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        root = pathlib.Path(tmp)
        check_warm_cache(root / "warm-cache")
        check_sweep_resume(root / "sweep-cache")
    return 0


if __name__ == "__main__":
    sys.exit(main())
