"""Table 7 — fraction of SA prefixes that can be verified."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table7Experiment(Experiment):
    """Verification of the SA prefixes of the studied providers."""

    experiment_id = "table7"
    title = "SA prefixes verified (next-hop relationship + active customer path)"
    paper_reference = "Table 7, Section 5.1.3"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        verifications = dataset.analysis.verify_sa_prefixes()
        result.headers = ["provider", "# SA prefixes", "% SA prefixes verified"]
        for provider in sorted(verifications):
            verification = verifications[provider]
            result.rows.append(
                [
                    f"AS{provider}",
                    verification.sa_prefix_count,
                    format_percent(verification.percent_verified, 1),
                ]
            )
        result.notes.append(
            "Paper Table 7: 95%-97.6% of the SA prefixes of AS1/AS3549/AS7018 verified."
        )
        return result
