"""Benchmark: reproduce Figure 6 (persistence of SA prefixes).

Paper shape: SA prefixes are consistently present across the 31 daily
snapshots and across the intra-day snapshots.
"""


def test_bench_fig6(benchmark, run_experiment):
    result = run_experiment(benchmark, "fig6")
    daily = [row for row in result.rows if row[0].startswith("fig6a")]
    intra_day = [row for row in result.rows if row[0].startswith("fig6b")]
    assert len(daily) == 31
    assert len(intra_day) == 12
    # SA prefixes present in (nearly) every snapshot.
    daily_with_sa = sum(1 for row in daily if row[3] > 0)
    assert daily_with_sa >= len(daily) - 2
    for row in result.rows:
        assert 0 <= row[3] <= row[2]
