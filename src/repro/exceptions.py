"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class PrefixError(ReproError):
    """An IPv4 prefix could not be parsed or manipulated."""


class ASPathError(ReproError):
    """An AS path is malformed or an operation on it is invalid."""


class PolicyError(ReproError):
    """A routing-policy definition or application is invalid."""


class ConfigError(ReproError):
    """A router configuration could not be parsed or rendered."""


class TopologyError(ReproError):
    """The annotated AS graph is inconsistent or an operation is invalid."""


class SimulationError(ReproError):
    """The route-propagation simulation reached an invalid state."""


class DataFormatError(ReproError):
    """An on-disk data format (MRT, show-ip-bgp, RPSL) is malformed."""


class InferenceError(ReproError):
    """A policy- or relationship-inference step received unusable input."""


class ExperimentError(ReproError):
    """An experiment was configured or executed incorrectly."""


class StorageError(ReproError):
    """A stage artifact could not be packed, unpacked or round-tripped."""
