"""Zero-copy publication of a compiled topology over shared memory.

The process-pool fan-out used to pickle the whole
:class:`~repro.simulation.fastpath.compile.CompiledTopology` into every
worker, which made multi-process runs *slower* than one process.  This
module removes the copy:

* :func:`lower_topology` flattens the compiled topology into the storage
  layer's primitive-tree discipline — every bulk structure (CSR adjacency,
  per-edge import columns, export templates, seed plans, interned tables)
  becomes a flat ``array('q')`` column, exactly the shape
  :mod:`repro.storage.packing` encodes as raw machine bytes;
* :func:`publish` packs the lowered tree into one
  :mod:`multiprocessing.shared_memory` segment and returns a
  :class:`SharedTopologyHandle` owning the segment's lifetime
  (context-manager, ``unlink()`` idempotent, crash-safe in the parent's
  ``finally``);
* :func:`attach` opens a published segment *by name* (or an mmap'ed
  compiled-topology artifact file *by path* — see
  :func:`repro.storage.store.open_artifact_view`) and wraps it in a
  :class:`SharedTopologyView`: a read-only duck-type of
  ``CompiledTopology`` whose bulk columns are :class:`memoryview` casts
  over the shared buffer (via :func:`repro.storage.packing.unpack_view`),
  so a worker's attach cost is parsing a few small tables — the megabytes
  of columns are never copied;
* :class:`AttachCache` is the sanctioned worker-side memo for attached
  views: entries derive purely from the task-supplied descriptor, so the
  per-process-copy hazard ``POOL002`` guards against cannot occur.

The lowering is deterministic (sets are sorted, dicts are iterated in
their deterministic construction order), so :func:`pack_topology` bytes
are content-addressable: the session layer stores them in the
``compiled-topology`` tier of the :class:`~repro.storage.store.DiskStore`
and later runs — including sweep workers sharing one store — attach the
cached artifact through the OS page cache instead of re-compiling.

Python 3.9–3.12 registers *attached* segments with the
``resource_tracker``, which would unlink a segment when the first worker
exits and spam leak warnings at interpreter shutdown; :func:`attach`
therefore suppresses the registration while opening the segment (the
parent handle's create-time registration is the sole one, and its
``unlink()`` retires it).  Merely *unregistering after* attach would not
do: forked workers share the parent's tracker process, whose name set
collapses duplicate registrations — a worker-side unregister would erase
the parent's entry and the parent's unlink would then trip a tracker
``KeyError``.
"""

from __future__ import annotations

import struct
from array import array
from multiprocessing import shared_memory
from typing import Callable, Iterator

from repro.bgp.attributes import Community, CommunitySet
from repro.exceptions import StorageError
from repro.net.prefix import Prefix
from repro.simulation.fastpath.compile import CompiledTopology, SeedPlan, TargetPairs
from repro.storage.packing import pack, unpack_view

#: Store tier name of cached compiled-topology artifacts.
STAGE = "compiled-topology"

#: Version of the lowered tree's shape (mirrored in
#: :data:`repro.storage.versions.CODEC_VERSIONS` for the store tier).
FORMAT_VERSION = 1

#: Little-endian u64 length prefix of the packed payload inside a segment
#: (shared-memory sizes are rounded up to page granularity, so the exact
#: payload length must be recorded).
_LEN = struct.Struct("<Q")


# -- lowering ------------------------------------------------------------------


def _pairs_csr(rows: Iterator[TargetPairs] | list[TargetPairs]) -> tuple[array, array]:
    """Lower rows of ``(target, slot)`` pairs into (indptr, interleaved flat)."""
    indptr = array("q", [0])
    flat = array("q")
    extend = flat.extend
    for pairs in rows:
        for pair in pairs:
            extend(pair)
        indptr.append(len(flat))
    return indptr, flat


def lower_topology(topology: CompiledTopology) -> tuple:
    """Flatten a compiled topology into a deterministic primitive tree.

    Every bulk structure becomes a flat integer column; the only
    non-column data are the sparse per-prefix LOCAL_PREF override groups.
    Sets are sorted before lowering so equal topologies always lower to
    equal trees (the packed bytes are content-addressed by the store).
    """
    adj_indptr = array("q", [0])
    adj_nbr = array("q")
    for row in topology.nbr_slot:
        # Row dicts are built in slot order (sorted by neighbor ASN) with
        # contiguous row-major slots, so the slot is recoverable as
        # ``indptr[u] + position`` and only the neighbor ids are stored.
        adj_nbr.extend(sorted(row, key=row.__getitem__))
        adj_indptr.append(len(adj_nbr))

    override_groups: dict[int, tuple[dict[Prefix, int], list[int]]] = {}
    for slot in sorted(topology.edge_overrides):
        overrides = topology.edge_overrides[slot]
        entry = override_groups.get(id(overrides))
        if entry is None:
            entry = override_groups[id(overrides)] = (overrides, [])
        entry[1].append(slot)
    ov_entries = []
    for overrides, slots in override_groups.values():
        triples = array("q")
        for prefix, lp in overrides.items():
            triples.extend((prefix.network, prefix.length, lp))
        ov_entries.append((array("q", slots), triples))

    tag_pairs = array("q")
    for tag in topology.tag_communities:
        tag_pairs.extend((tag.asn, tag.value))
    marker = array("q")
    for pair in topology.scoped_marker:
        marker.extend(pair)

    expl_indptr, expl_flat = _pairs_csr(topology.exp_local)
    expc_indptr, expc_flat = _pairs_csr(topology.exp_customer)
    expd_indptr, expd_flat = _pairs_csr(topology.exp_down)

    task_origin = array("q")
    task_net = array("q")
    task_len = array("q")
    seed_task_indptr = array("q", [0])
    seed_group_comm = array("q")
    seed_group_indptr = array("q", [0])
    seed_pair_flat = array("q")
    for origin_idx, prefix in topology.origin_tasks:
        task_origin.append(origin_idx)
        task_net.append(prefix.network)
        task_len.append(prefix.length)
        plan = topology.seeds[(origin_idx, prefix)]
        for pairs, comm_id in plan.groups:
            seed_group_comm.append(comm_id)
            for pair in pairs:
                seed_pair_flat.extend(pair)
            seed_group_indptr.append(len(seed_pair_flat))
        seed_task_indptr.append(len(seed_group_comm))

    comm_indptr = array("q", [0])
    comm_flat = array("q")
    for communities in topology.comm_table:
        for pair in sorted((c.asn, c.value) for c in communities.communities):
            comm_flat.extend(pair)
        comm_indptr.append(len(comm_flat))

    return (
        FORMAT_VERSION,
        array("q", topology.asns),
        adj_indptr,
        adj_nbr,
        array("q", topology.edge_lp),
        array("q", topology.edge_tag),
        array("q", topology.edge_rel),
        tuple(ov_entries),
        tag_pairs,
        array("b", map(int, topology.honor_scoped)),
        marker,
        expl_indptr,
        expl_flat,
        expc_indptr,
        expc_flat,
        expd_indptr,
        expd_flat,
        task_origin,
        task_net,
        task_len,
        seed_task_indptr,
        seed_group_comm,
        seed_group_indptr,
        seed_pair_flat,
        array("q", topology.observed),
        comm_indptr,
        comm_flat,
    )


def pack_topology(topology: CompiledTopology) -> bytes:
    """The deterministic packed bytes of a lowered compiled topology.

    This is both the shared-memory segment payload and the
    ``compiled-topology`` store-tier artifact payload.
    """
    return pack(lower_topology(topology))


# -- lazy view containers ------------------------------------------------------


class _LazyPairs:
    """Per-AS ``(target, slot)`` templates, materialized once per index."""

    __slots__ = ("_indptr", "_flat", "_memo")

    def __init__(self, indptr, flat) -> None:
        self._indptr = indptr
        self._flat = flat
        self._memo: list[TargetPairs | None] = [None] * (len(indptr) - 1)

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, index: int) -> TargetPairs:
        pairs = self._memo[index]
        if pairs is None:
            flat = self._flat
            start = self._indptr[index]
            stop = self._indptr[index + 1]
            pairs = tuple(
                (flat[k], flat[k + 1]) for k in range(start, stop, 2)
            )
            self._memo[index] = pairs
        return pairs


class _LazySets:
    """Per-AS target-id sets derived from a :class:`_LazyPairs` template."""

    __slots__ = ("_pairs", "_memo")

    def __init__(self, pairs: _LazyPairs) -> None:
        self._pairs = pairs
        self._memo: list[frozenset[int] | None] = [None] * len(pairs)

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, index: int) -> frozenset[int]:
        targets = self._memo[index]
        if targets is None:
            targets = frozenset(pair[0] for pair in self._pairs[index])
            self._memo[index] = targets
        return targets


class _LazyNbrSlot:
    """Per-AS ``neighbor -> slot`` rows rebuilt from the CSR adjacency."""

    __slots__ = ("_indptr", "_nbr", "_memo")

    def __init__(self, indptr, nbr) -> None:
        self._indptr = indptr
        self._nbr = nbr
        self._memo: list[dict[int, int] | None] = [None] * (len(indptr) - 1)

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, index: int) -> dict[int, int]:
        row = self._memo[index]
        if row is None:
            start = self._indptr[index]
            stop = self._indptr[index + 1]
            nbr = self._nbr
            row = {nbr[k]: k for k in range(start, stop)}
            self._memo[index] = row
        return row


class _LazySeeds:
    """``(origin_idx, prefix) -> SeedPlan`` over the flattened seed columns."""

    __slots__ = ("_view", "_task_of", "_memo")

    def __init__(self, view: "SharedTopologyView") -> None:
        self._view = view
        self._task_of = {
            key: index for index, key in enumerate(view.origin_tasks)
        }
        self._memo: dict[int, SeedPlan] = {}

    def __len__(self) -> int:
        return len(self._task_of)

    def __contains__(self, key) -> bool:
        return key in self._task_of

    def get(self, key, default: SeedPlan | None = None) -> SeedPlan | None:
        task_index = self._task_of.get(key)
        if task_index is None:
            return default
        return self._view.seed_for(task_index)

    def __getitem__(self, key) -> SeedPlan:
        return self._view.seed_for(self._task_of[key])


class SharedTopologyView:
    """A read-only :class:`CompiledTopology` duck-type over a shared buffer.

    Bulk columns (`edge_*`, adjacency, export templates, seed plans) stay
    :class:`memoryview` casts into the published segment or mmap'ed
    artifact; small object tables (community sets, tag communities, origin
    prefixes) are materialized once on attach, and per-AS structures are
    materialized lazily so a worker only pays for the ASes its shard
    touches.

    Attributes:
        descriptor: the picklable attach descriptor this view came from —
            ``("shm", segment_name)`` or ``("file", artifact_path)`` — which
            is what the parent ships to workers instead of the topology.
    """

    def __init__(self, tree: tuple, descriptor: tuple, retain=None) -> None:
        """Wrap one lowered tree; ``retain`` owns the underlying buffer."""
        if not (isinstance(tree, tuple) and len(tree) == 27 and tree[0] == FORMAT_VERSION):
            raise StorageError("unrecognized compiled-topology payload")
        self._retain = retain
        self.descriptor = descriptor
        (
            _,
            asns,
            adj_indptr,
            adj_nbr,
            self.edge_lp,
            self.edge_tag,
            self.edge_rel,
            ov_entries,
            tag_pairs,
            self.honor_scoped,
            marker,
            expl_indptr,
            expl_flat,
            expc_indptr,
            expc_flat,
            expd_indptr,
            expd_flat,
            task_origin,
            task_net,
            task_len,
            self._seed_task_indptr,
            self._seed_group_comm,
            self._seed_group_indptr,
            self._seed_pair_flat,
            observed,
            comm_indptr,
            comm_flat,
        ) = tree
        self.asns = tuple(asns)
        self.observed = tuple(observed)
        self.nbr_slot = _LazyNbrSlot(adj_indptr, adj_nbr)
        self.edge_overrides: dict[int, dict[Prefix, int]] = {}
        for slots, triples in ov_entries:
            shared = {
                Prefix(triples[k], triples[k + 1]): triples[k + 2]
                for k in range(0, len(triples), 3)
            }
            for slot in slots:
                self.edge_overrides[slot] = shared
        self.tag_communities = [
            Community(tag_pairs[k], tag_pairs[k + 1])
            for k in range(0, len(tag_pairs), 2)
        ]
        self.scoped_marker = [
            (marker[k], marker[k + 1]) for k in range(0, len(marker), 2)
        ]
        self.exp_local = _LazyPairs(expl_indptr, expl_flat)
        self.exp_local_set = _LazySets(self.exp_local)
        self.exp_customer = _LazyPairs(expc_indptr, expc_flat)
        self.exp_down = _LazyPairs(expd_indptr, expd_flat)
        self.origin_tasks = [
            (task_origin[i], Prefix(task_net[i], task_len[i]))
            for i in range(len(task_origin))
        ]
        self.comm_table = [
            CommunitySet(
                Community(comm_flat[k], comm_flat[k + 1])
                for k in range(comm_indptr[i], comm_indptr[i + 1], 2)
            )
            for i in range(len(comm_indptr) - 1)
        ]
        self._seed_memo: dict[int, SeedPlan] = {}
        self._index_of: dict[int, int] | None = None
        self._seeds: _LazySeeds | None = None

    # -- CompiledTopology surface -------------------------------------------

    @property
    def as_count(self) -> int:
        """Number of ASes in the compiled graph."""
        return len(self.asns)

    @property
    def index_of(self) -> dict[int, int]:
        """``ASN -> dense id``, materialized on first use."""
        mapping = self._index_of
        if mapping is None:
            mapping = self._index_of = {
                asn: i for i, asn in enumerate(self.asns)
            }
        return mapping

    @property
    def seeds(self) -> _LazySeeds:
        """The ``(origin_idx, prefix) -> SeedPlan`` mapping, built lazily."""
        seeds = self._seeds
        if seeds is None:
            seeds = self._seeds = _LazySeeds(self)
        return seeds

    def seed_for(self, task_index: int) -> SeedPlan:
        """The seed plan of one origin task, materialized on first use."""
        plan = self._seed_memo.get(task_index)
        if plan is None:
            group_comm = self._seed_group_comm
            group_indptr = self._seed_group_indptr
            flat = self._seed_pair_flat
            groups = []
            for g in range(
                self._seed_task_indptr[task_index],
                self._seed_task_indptr[task_index + 1],
            ):
                pairs = tuple(
                    (flat[k], flat[k + 1])
                    for k in range(group_indptr[g], group_indptr[g + 1], 2)
                )
                groups.append((pairs, group_comm[g]))
            announced = frozenset(
                pair[0] for pairs, _ in groups for pair in pairs
            )
            plan = SeedPlan(groups=tuple(groups), announced=announced)
            self._seed_memo[task_index] = plan
        return plan

    def pairs_from(self, sender_idx: int, targets: list[int]) -> TargetPairs:
        """Mirror of :meth:`CompiledTopology.pairs_from` over the CSR view."""
        from repro.exceptions import SimulationError

        pairs = []
        for target in targets:
            slot = self.nbr_slot[target].get(sender_idx)
            if slot is None:
                raise SimulationError(
                    f"AS{self.asns[sender_idx]} announced a route to "
                    f"non-neighbor AS{self.asns[target]}"
                )
            pairs.append((target, slot))
        return tuple(pairs)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop the view's buffer references and close the retained source.

        Best-effort: if column views were handed out and still pin the
        buffer, the close is skipped (the parent's ``unlink`` still removes
        a shared segment once every process detaches).
        """
        retain = self._retain
        self.__dict__.clear()
        self._retain = None
        self.descriptor = None
        if retain is not None:
            try:
                retain.close()
            except BufferError:
                pass

    def __enter__(self) -> "SharedTopologyView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- publish / attach ----------------------------------------------------------


class SharedTopologyHandle:
    """Parent-side ownership of one published shared-memory segment.

    The handle (not the attached workers) owns the segment's lifetime:
    ``unlink()`` — idempotent, also called on context-manager exit — removes
    the name so the memory is freed once the last attached process exits.
    """

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        """Wrap a created segment (already filled with the packed payload)."""
        self._segment: shared_memory.SharedMemory | None = segment
        self.name = segment.name

    @property
    def descriptor(self) -> tuple[str, str]:
        """The picklable attach descriptor to ship to workers."""
        return ("shm", self.name)

    def unlink(self) -> None:
        """Close and remove the segment; safe to call more than once."""
        segment = self._segment
        self._segment = None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedTopologyHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


def publish(topology: CompiledTopology) -> SharedTopologyHandle:
    """Lower, pack and copy a compiled topology into one shared segment.

    Returns:
        The owning handle; workers attach via ``handle.descriptor`` and the
        caller must ``unlink()`` (or use the handle as a context manager)
        when the run is over — the engine does this in a ``finally`` so an
        engine exception or a killed worker never leaks the segment.
    """
    payload = pack_topology(topology)
    segment = shared_memory.SharedMemory(create=True, size=_LEN.size + len(payload))
    _LEN.pack_into(segment.buf, 0, len(payload))
    segment.buf[_LEN.size : _LEN.size + len(payload)] = payload
    return SharedTopologyHandle(segment)


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment by name without registering it with the tracker.

    The tracker assumes whoever opens a segment owns it and unlinks leaked
    names at process exit; for attach-by-name workers that would destroy
    the parent's segment early and print spurious leak warnings.  The
    registration is suppressed for the duration of the attach, leaving the
    parent's create-time registration as the sole entry (see the module
    docstring for why unregister-after-attach is not equivalent).
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register(target, rtype):
            if rtype != "shared_memory":
                original(target, rtype)

        resource_tracker.register = register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


def attach(descriptor: tuple) -> SharedTopologyView:
    """Open a published compiled topology without copying its columns.

    Args:
        descriptor: ``("shm", segment_name)`` for a segment published by
            :func:`publish`, or ``("file", path)`` for a
            ``compiled-topology`` artifact written by the session layer
            (mmap'ed read-only via
            :func:`repro.storage.store.open_artifact_view`).

    Returns:
        The attached view (a context manager; closing detaches).

    Raises:
        StorageError: on an unknown descriptor or an invalid payload.
        FileNotFoundError: when the segment/file no longer exists.
    """
    kind = descriptor[0]
    if kind == "shm":
        segment = _open_untracked(descriptor[1])
        size = _LEN.unpack_from(segment.buf, 0)[0]
        payload = memoryview(segment.buf)[_LEN.size : _LEN.size + size]
        try:
            return SharedTopologyView(
                unpack_view(payload), descriptor, retain=segment
            )
        except Exception:
            payload.release()
            segment.close()
            raise
    if kind == "file":
        from repro.storage.store import open_artifact_view

        artifact = open_artifact_view(descriptor[1], STAGE)
        try:
            return SharedTopologyView(
                unpack_view(artifact.payload), descriptor, retain=artifact
            )
        except Exception:
            artifact.close()
            raise
    raise StorageError(f"unknown attach descriptor: {descriptor!r}")


def view_over_payload(
    payload, descriptor: tuple = ("inline", ""), retain=None
) -> SharedTopologyView:
    """A view over an already-open payload buffer (e.g. a store mmap)."""
    return SharedTopologyView(unpack_view(payload), descriptor, retain=retain)


class AttachCache:
    """A worker-side memo whose entries derive purely from task arguments.

    This is the sanctioned replacement for initializer-owned worker
    globals (the pattern ``POOL002`` flags): because every entry is built
    by a pure function of its key — here, the attach descriptor shipped
    with each task — a fresh process, a respawned worker and a warm worker
    all compute identical values, so the per-process-copy hazard the lint
    rule guards against cannot occur.  ``repro lint`` recognizes
    module-level ``AttachCache`` instances and exempts them.
    """

    __slots__ = ("_build", "_entries")

    def __init__(self, build: Callable[[tuple], object]) -> None:
        """Remember the pure builder applied to unseen keys."""
        self._build = build
        self._entries: dict[tuple, object] = {}

    def get(self, key: tuple) -> object:
        """The memoized entry of ``key``, building it on first use."""
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = self._build(key)
        return entry
