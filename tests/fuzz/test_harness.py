"""Tests for run_fuzz, the FuzzReport schema and the `python -m repro fuzz` CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ExperimentError
from repro.fuzz import ORACLES, run_case, run_fuzz
from repro.fuzz.harness import FuzzCaseResult, FuzzReport, OracleFailure


class TestRunFuzz:
    def test_unknown_family_fails_before_any_simulation(self):
        with pytest.raises(ExperimentError, match="unknown scenario family"):
            run_fuzz(["nope"], count=1)

    def test_invalid_count_and_workers(self):
        with pytest.raises(ExperimentError, match="count"):
            run_fuzz(["multihoming"], count=0)
        with pytest.raises(ExperimentError, match="workers"):
            run_fuzz(["multihoming"], count=1, workers=0)

    def test_single_case_runs_every_oracle(self):
        result = run_case("collector-size", 2)
        assert result.ok
        assert result.oracles_passed == [name for name, _ in ORACLES]
        assert result.config_fingerprint
        assert "--seed 2 --count 1" in result.reproduction

    def test_report_covers_every_requested_case(self):
        report = run_fuzz(["hierarchy-depth"], count=2, seed=11)
        assert report.ok
        assert [(case.family, case.seed) for case in report.cases] == [
            ("hierarchy-depth", 11),
            ("hierarchy-depth", 12),
        ]

    def test_json_schema_and_timing_mask(self):
        report = run_fuzz(["community-adoption"], count=1, seed=4)
        payload = json.loads(report.to_json())
        assert list(payload) == [
            "families", "count", "base_seed", "ok", "cases", "workers", "total_seconds",
        ]
        (case,) = payload["cases"]
        assert case["family"] == "community-adoption"
        assert case["seed"] == 4
        assert case["ok"] is True
        masked = json.loads(report.to_json(include_timing=False))
        assert masked["total_seconds"] is None
        assert masked["cases"][0]["seconds"] is None


class TestRendering:
    def test_failures_render_with_a_reproduction_line(self):
        report = FuzzReport(
            families=["multihoming"],
            count=1,
            base_seed=9,
            cases=[
                FuzzCaseResult(
                    family="multihoming",
                    seed=9,
                    config_fingerprint="abc",
                    oracles_passed=["valley-free"],
                    failures=[OracleFailure(oracle="sa-partitions", message="boom")],
                )
            ],
        )
        assert not report.ok
        text = report.render()
        assert "FAIL" in text
        assert "oracle=sa-partitions: boom" in text
        assert "reproduce: python -m repro fuzz --family multihoming --seed 9 --count 1" in text

    def test_clean_report_renders_ok_lines(self):
        report = run_fuzz(["peering-density"], count=1, seed=7)
        text = report.render()
        assert "ok   peering-density" in text
        assert "summary: 1 cases, 1 ok, 0 failing" in text


class TestFuzzCli:
    def test_fuzz_command_passes(self, capsys):
        assert cli_main(
            ["fuzz", "--family", "peering-density", "--count", "1", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "ok   peering-density" in out

    def test_fuzz_json_output(self, capsys):
        assert cli_main(
            ["fuzz", "--family", "collector-size", "--count", "1", "--seed", "3",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cases"][0]["family"] == "collector-size"

    def test_fuzz_unknown_family_fails_cleanly(self, capsys):
        assert cli_main(["fuzz", "--family", "nope", "--count", "1"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err
