"""Tests for the scenario registry and the built-in presets."""

from dataclasses import replace

import pytest

from repro.exceptions import ExperimentError
from repro.session import (
    ObservationParameters,
    StageCache,
    Study,
    StudyConfig,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.session.scenarios import _SCENARIOS

EXPECTED = {"standard", "small", "dense-peering", "sparse-multihoming", "large"}


class TestRegistry:
    def test_builtin_presets_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ExperimentError):
            get_scenario("does-not-exist")

    def test_all_scenarios_sorted_and_described(self):
        scenarios = all_scenarios()
        assert [s.name for s in scenarios] == sorted(s.name for s in scenarios)
        assert all(s.description for s in scenarios)

    def test_register_rejects_duplicates(self):
        with pytest.raises(ExperimentError):
            register_scenario("standard", "again", StudyConfig)

    def test_register_new_scenario(self, monkeypatch):
        monkeypatch.delitem(_SCENARIOS, "tiny-test", raising=False)
        scenario = register_scenario(
            "tiny-test", "a registered-on-the-fly scenario", StudyConfig
        )
        try:
            assert get_scenario("tiny-test") is scenario
            assert isinstance(scenario.study(cache=StageCache()), Study)
        finally:
            _SCENARIOS.pop("tiny-test", None)

    def test_configs_are_pairwise_distinct(self):
        configs = [get_scenario(name).config() for name in sorted(EXPECTED)]
        assert len(set(configs)) == len(configs)


def _scaled_down(config: StudyConfig) -> StudyConfig:
    """The preset with its topology shrunk so building it stays test-cheap."""
    return replace(
        config,
        topology=replace(
            config.topology,
            tier1_count=4,
            tier2_count=8,
            tier3_count=14,
            stub_count=60,
        ),
        observation=ObservationParameters(
            looking_glass_count=5, tier1_looking_glass_count=2, collector_vantage_count=8
        ),
    )


class TestPresetsAreObservablyDistinct:
    """Scaled-down builds of the presets must differ in what the collector sees."""

    @pytest.fixture(scope="class")
    def datasets(self):
        cache = StageCache()
        return {
            name: Study(_scaled_down(get_scenario(name).config()), cache=cache).dataset()
            for name in ("standard", "dense-peering", "sparse-multihoming")
        }

    def test_dense_peering_adds_edges(self, datasets):
        assert (
            datasets["dense-peering"].ground_truth_graph.edge_count()
            > datasets["standard"].ground_truth_graph.edge_count()
        )

    def test_sparse_multihoming_reduces_multihoming(self, datasets):
        def multihomed(dataset):
            graph = dataset.ground_truth_graph
            return sum(
                1
                for asn in graph.ases()
                if not graph.customers_of(asn) and len(graph.providers_of(asn)) > 1
            )

        assert multihomed(datasets["sparse-multihoming"]) < multihomed(
            datasets["standard"]
        )

    def test_observable_tables_differ(self, datasets):
        paths = {
            name: frozenset(str(path) for path in dataset.collector.all_paths())
            for name, dataset in datasets.items()
        }
        assert paths["standard"] != paths["dense-peering"]
        assert paths["standard"] != paths["sparse-multihoming"]
        assert paths["dense-peering"] != paths["sparse-multihoming"]
