"""BGP substrate: route attributes, RIBs, the decision process and policies.

This subpackage implements the pieces of BGP the paper's methodology relies
on (Section 2.2):

* :mod:`repro.bgp.attributes` — ORIGIN, MED, LOCAL_PREF and the community
  attribute, including the well-known NO_EXPORT / NO_ADVERTISE values used
  by the selective-announcement analysis.
* :mod:`repro.bgp.route` — a route announcement with its attribute set and
  the relationship classification (customer/peer/provider route).
* :mod:`repro.bgp.rib` — Adj-RIB-In and Loc-RIB containers.
* :mod:`repro.bgp.decision` — the sequential decision process of
  Section 2.2.1 (local preference first, then AS-path length, origin, MED,
  eBGP-over-iBGP, IGP metric, router ID).
* :mod:`repro.bgp.policy` — prefix-lists, access-lists, community-lists and
  route-maps: the import/export policy engine mirroring the configuration
  snippets shown in the paper.
* :mod:`repro.bgp.config` — a Cisco-IOS-flavoured ``router bgp``
  configuration model with a renderer and parser.
"""

from repro.bgp.attributes import (
    Community,
    CommunitySet,
    Origin,
    WellKnownCommunity,
)
from repro.bgp.route import NeighborKind, Route, RouteSource
from repro.bgp.rib import AdjRibIn, LocRib, RibEntry
from repro.bgp.decision import DecisionProcess, DecisionStep
from repro.bgp.policy import (
    AccessList,
    CommunityList,
    MatchCondition,
    PolicyAction,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.config import BgpConfig, NeighborConfig

__all__ = [
    "AccessList",
    "AdjRibIn",
    "BgpConfig",
    "Community",
    "CommunityList",
    "CommunitySet",
    "DecisionProcess",
    "DecisionStep",
    "LocRib",
    "MatchCondition",
    "NeighborConfig",
    "NeighborKind",
    "Origin",
    "PolicyAction",
    "PrefixList",
    "PrefixListEntry",
    "RibEntry",
    "Route",
    "RouteMap",
    "RouteMapClause",
    "RouteSource",
    "WellKnownCommunity",
]
