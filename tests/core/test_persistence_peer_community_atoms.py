"""Tests for persistence (Figs. 6/7), peer export (Table 10), community
semantics (Appendix / Fig. 9 / Table 11) and policy atoms."""

import pytest

from repro.core.atoms import PolicyAtomAnalyzer
from repro.core.community import CommunityAnalyzer, bucket_of
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.core.peer_export import PeerExportAnalyzer
from repro.core.persistence import PersistenceAnalyzer
from repro.exceptions import InferenceError
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.timeline import Timeline, TimelineParameters
from repro.topology.generator import GeneratorParameters, InternetGenerator
from repro.topology.graph import Relationship


@pytest.fixture(scope="module")
def timeline_snapshots():
    """A short timeline over a tiny Internet with aggressive churn."""
    internet = InternetGenerator(
        GeneratorParameters(seed=31, tier1_count=3, tier2_count=6, tier3_count=10, stub_count=50)
    ).generate()
    assignment = PolicyGenerator(PolicyParameters(seed=77)).generate(internet)
    provider = internet.tier1[0]
    timeline = Timeline(
        internet,
        assignment,
        observed_ases=[provider],
        parameters=TimelineParameters(
            snapshot_count=6, churn_probability=0.5, appear_probability=0.05,
            disappear_probability=0.15, seed=5,
        ),
    )
    return internet, provider, timeline.run()


class TestPersistence:
    def test_series_lengths(self, timeline_snapshots):
        internet, provider, snapshots = timeline_snapshots
        analyzer = PersistenceAnalyzer(internet.graph)
        series = analyzer.series_for_provider(snapshots, provider)
        assert len(series.snapshot_indices) == 6
        assert len(series.all_prefix_counts) == 6
        assert len(series.sa_prefix_counts) == 6
        assert series.as_rows()[0][0] == 0

    def test_sa_counts_bounded_by_totals(self, timeline_snapshots):
        internet, provider, snapshots = timeline_snapshots
        analyzer = PersistenceAnalyzer(internet.graph)
        series = analyzer.series_for_provider(snapshots, provider)
        for total, sa in zip(series.all_prefix_counts, series.sa_prefix_counts):
            assert 0 <= sa <= total

    def test_sa_prefixes_persist_across_snapshots(self, timeline_snapshots):
        internet, provider, snapshots = timeline_snapshots
        analyzer = PersistenceAnalyzer(internet.graph)
        series = analyzer.series_for_provider(snapshots, provider)
        assert any(count > 0 for count in series.sa_prefix_counts)

    def test_uptime_distribution_consistency(self, timeline_snapshots):
        internet, provider, snapshots = timeline_snapshots
        analyzer = PersistenceAnalyzer(internet.graph)
        distribution = analyzer.uptime_distribution(snapshots, provider)
        assert distribution.snapshot_count == 6
        for prefix, uptime in distribution.uptime.items():
            assert 1 <= uptime <= 6
            assert distribution.sa_uptime.get(prefix, 0) <= uptime
        remaining = distribution.remaining_sa_prefixes()
        shifting = distribution.shifting_prefixes()
        assert remaining.isdisjoint(shifting)
        assert remaining | shifting == distribution.ever_sa_prefixes()

    def test_histogram_totals_match(self, timeline_snapshots):
        internet, provider, snapshots = timeline_snapshots
        analyzer = PersistenceAnalyzer(internet.graph)
        distribution = analyzer.uptime_distribution(snapshots, provider)
        rows = distribution.histogram()
        assert len(rows) == 6
        total_remaining = sum(row[1] for row in rows)
        total_shifting = sum(row[2] for row in rows)
        assert total_remaining == len(distribution.remaining_sa_prefixes())
        assert total_shifting == len(distribution.shifting_prefixes())

    def test_churn_produces_shifting_prefixes(self, timeline_snapshots):
        internet, provider, snapshots = timeline_snapshots
        analyzer = PersistenceAnalyzer(internet.graph)
        distribution = analyzer.uptime_distribution(snapshots, provider)
        # With churn probability 0.5 over 6 snapshots some prefixes shift.
        assert distribution.percent_shifting > 0.0


class TestPeerExport:
    def test_most_peers_announce_directly(self, dataset, graph, provider_tables):
        analyzer = PeerExportAnalyzer(graph)
        reports = analyzer.analyze_many(
            provider_tables, originated=dataset.internet.originated
        )
        assert reports
        for report in reports.values():
            assert report.peer_count > 0
            assert report.percent_announcing > 60.0

    def test_behaviour_counts_bounded(self, dataset, graph, provider_tables):
        analyzer = PeerExportAnalyzer(graph)
        provider = next(iter(provider_tables))
        report = analyzer.analyze(
            provider, provider_tables[provider], originated=dataset.internet.originated
        )
        for peer in report.peers:
            assert 0 <= peer.directly_received <= peer.originated_prefixes
            assert graph.relationship(provider, peer.peer) is Relationship.PEER

    def test_observed_origination_fallback(self, dataset, graph, provider_tables):
        analyzer = PeerExportAnalyzer(graph)
        provider = next(iter(provider_tables))
        report = analyzer.analyze(provider, provider_tables[provider])
        assert report.peer_count > 0

    def test_threshold_changes_classification(self, dataset, graph, provider_tables):
        analyzer = PeerExportAnalyzer(graph)
        provider = next(iter(provider_tables))
        strict = analyzer.analyze(
            provider, provider_tables[provider],
            originated=dataset.internet.originated, full_export_threshold=1.0,
        )
        lenient = analyzer.analyze(
            provider, provider_tables[provider],
            originated=dataset.internet.originated, full_export_threshold=0.5,
        )
        assert lenient.announcing_peer_count >= strict.announcing_peer_count


class TestCommunitySemantics:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InferenceError):
            CommunityAnalyzer(full_table_fraction=0.0)

    def test_fig9_ranking_is_sorted(self, dataset, glasses):
        analyzer = CommunityAnalyzer()
        ranked = analyzer.prefix_counts_by_rank(glasses[0])
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)
        assert all(count > 0 for count in counts)

    def test_published_plan_semantics_match_ground_truth(self, dataset, graph, glasses):
        analyzer = CommunityAnalyzer()
        for glass in glasses:
            plan = dataset.assignment.policies[glass.asn].community_plan
            if plan is None:
                continue
            semantics = analyzer.infer_semantics(glass, published_plan=plan)
            for bucket, relationship in semantics.value_to_relationship.items():
                # The bucket base must map back to the same relationship range.
                from repro.bgp.attributes import Community

                representative = Community(glass.asn, bucket * 1000)
                assert plan.relationship_of(representative) is relationship

    def test_inferred_semantics_verify_relationships(self, dataset, graph, glasses):
        analyzer = CommunityAnalyzer()
        verified_total = 0
        verifiable_total = 0
        for glass in glasses:
            if dataset.assignment.policies[glass.asn].community_plan is None:
                continue
            semantics = analyzer.infer_semantics(glass)
            result = analyzer.verify_relationships(glass, semantics, graph)
            verified_total += result.verified_neighbors
            verifiable_total += result.verifiable_neighbors
        assert verifiable_total > 0
        assert verified_total / verifiable_total > 0.85

    def test_bucket_of_groups_ranges(self):
        from repro.bgp.attributes import Community

        assert bucket_of(Community(12859, 1010)) == bucket_of(Community(12859, 1020))
        assert bucket_of(Community(12859, 1010)) != bucket_of(Community(12859, 2010))

    def test_non_tagging_as_yields_no_semantics(self, dataset, glasses):
        analyzer = CommunityAnalyzer()
        non_tagging = [
            glass
            for glass in glasses
            if dataset.assignment.policies[glass.asn].community_plan is None
        ]
        if not non_tagging:
            pytest.skip("every Looking Glass AS tags under this seed")
        semantics = analyzer.infer_semantics(non_tagging[0])
        assert semantics.value_to_relationship == {}


class TestPolicyAtoms:
    def test_atoms_partition_prefixes(self, dataset):
        analyzer = PolicyAtomAnalyzer()
        atoms = analyzer.compute_atoms(dataset.collector)
        prefixes = [prefix for atom in atoms for prefix in atom.prefixes]
        assert len(prefixes) == len(set(prefixes))
        assert set(prefixes) == set(dataset.collector.prefixes())

    def test_atoms_sorted_by_size(self, dataset):
        analyzer = PolicyAtomAnalyzer()
        atoms = analyzer.compute_atoms(dataset.collector)
        sizes = [atom.size for atom in atoms]
        assert sizes == sorted(sizes, reverse=True)

    def test_statistics(self, dataset, graph, sa_reports):
        analyzer = PolicyAtomAnalyzer()
        atoms = analyzer.compute_atoms(dataset.collector)
        sa_prefixes = set()
        for report in sa_reports.values():
            sa_prefixes |= report.sa_prefix_set()
        stats = analyzer.statistics(atoms, sa_prefixes=sa_prefixes)
        assert stats.atom_count == len(atoms)
        assert stats.prefix_count == sum(atom.size for atom in atoms)
        assert stats.largest_atom_size >= 1
        assert stats.average_atom_size >= 1.0
        assert 0 <= stats.atoms_with_sa_prefixes <= stats.atom_count
        assert stats.single_origin_atoms >= 1

    def test_empty_statistics(self):
        stats = PolicyAtomAnalyzer().statistics([])
        assert stats.average_atom_size == 0.0
