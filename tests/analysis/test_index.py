"""Structural tests of the columnar MeasurementIndex."""

import pytest

from repro.analysis.index import MeasurementIndex
from repro.data.dataset import small_dataset


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def index(dataset) -> MeasurementIndex:
    # Built independently of the dataset's memoised engine so these tests
    # stay valid whatever the engine has touched.
    return MeasurementIndex.from_dataset(dataset)


class TestInterning:
    def test_prefix_ids_are_bijective(self, index):
        assert len(index.prefixes) == len(index.prefix_ids)
        for pid, prefix in enumerate(index.prefixes):
            assert index.prefix_ids[prefix] == pid

    def test_path_ids_are_bijective(self, index):
        assert len(index.paths) == len(index.path_ids)
        for path_id, path in enumerate(index.paths):
            assert index.path_ids[path] == path_id

    def test_collapsed_paths_match_deduplication(self, index):
        for path_id, path in enumerate(index.paths):
            assert index.collapsed[path_id] == path.deduplicate().asns
            assert index.path_origin[path_id] == path.origin_as

    def test_unknown_prefix_has_no_id(self, index):
        from repro.net.prefix import Prefix

        assert index.prefix_id(Prefix.parse("203.0.113.0/24")) is None


class TestCollectorColumns:
    def test_one_row_per_collector_entry(self, index, dataset):
        assert len(index.col_vantage) == len(dataset.collector.entries)
        for row, entry in enumerate(dataset.collector.entries):
            assert index.col_vantage[row] == entry.vantage
            assert index.prefixes[index.col_prefix[row]] == entry.prefix
            assert index.paths[index.col_path[row]] == entry.as_path

    def test_rows_by_prefix_matches_entries_for_prefix(self, index, dataset):
        for prefix in dataset.collector.prefixes():
            pid = index.prefix_id(prefix)
            rows = index.rows_by_prefix[pid]
            legacy = dataset.collector.entries_for_prefix(prefix)
            assert [dataset.collector.entries[r] for r in rows] == legacy

    def test_rows_by_member_matches_paths_containing(self, index, dataset):
        sample = sorted(index.rows_by_member)[:10]
        for asn in sample:
            rows = index.rows_by_member[asn]
            legacy = list(dataset.collector.paths_containing(asn))
            assert [index.paths[index.col_path[r]] for r in rows] == legacy

    def test_adjacency_matches_verifier(self, index, dataset):
        from repro.core.verification import Verifier

        verifier = Verifier(dataset.ground_truth_graph)
        assert index.adjacency == verifier._observed_adjacency(dataset.collector)


class TestGlassAndTableColumns:
    def test_glass_rows_cover_every_candidate_route(self, index, dataset):
        for asn, view in index.glasses.items():
            table = dataset.looking_glass_of(asn).table
            route_count = sum(len(entry.routes) for entry in table.entries())
            assert view.route_count == route_count
            assert view.entry_count == len(table)
            assert list(view.entry_offsets)[-1] == route_count

    def test_table_rows_cover_every_best_route(self, index, dataset):
        for asn, view in index.tables.items():
            best = list(dataset.result.table_of(asn).best_routes())
            assert view.best_route == best
            for row, route in enumerate(best):
                assert index.prefixes[view.best_prefix[row]] == route.prefix
                assert view.best_origin[row] == route.origin_as
                assert view.row_of_prefix[view.best_prefix[row]] == row

    def test_every_observed_as_has_a_table(self, index, dataset):
        assert sorted(index.tables) == sorted(dataset.result.observed_ases)


class TestIrrRowsAndStats:
    def test_irr_rows_cover_every_object(self, index, dataset):
        assert len(index.irr_rows) == len(dataset.irr)
        by_asn = {row.asn: row for row in index.irr_rows}
        for obj in dataset.irr:
            row = by_asn[obj.asn]
            assert row.last_updated == obj.last_updated
            assert row.imports == tuple(
                (line.peer_as, line.pref) for line in obj.imports
            )

    def test_stats_counters(self, index, dataset):
        stats = index.stats()
        assert stats["collector_rows"] == len(dataset.collector.entries)
        assert stats["looking_glasses"] == len(dataset.looking_glasses)
        assert stats["observed_tables"] == len(dataset.result.observed_ases)
        assert stats["irr_objects"] == len(dataset.irr)
        assert stats["interned_prefixes"] == len(index.prefixes)

    def test_providers_under_study_matches_dataset(self, index, dataset):
        assert index.providers_under_study(3) == dataset.providers_under_study(3)
